// Package daemon carries the boilerplate every long-running command in
// this repository repeats: the -version flag, a named structured
// logger, build-info registration, a signal-bound context, and the
// observability endpoint — /metrics + pprof plus the operational-health
// surface (/healthz, /readyz, /statusz), the go_*/process_* runtime
// collector, and the slo_* burn-rate tracker. Keeping it in one place
// means dzdbd, eppd, and riskywatchd cannot drift apart on process
// hygiene: every daemon answers the same probes with the same
// semantics, and only the readiness conditions differ.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/health"
	obsprof "repro/internal/obs/prof"
	obsruntime "repro/internal/obs/runtime"
	"repro/internal/obs/slo"
)

// App is the shared per-process state.
type App struct {
	Name string
	Log  *slog.Logger
	Reg  *obs.Registry
	// Health is the probe registry behind /healthz and /readyz. Daemons
	// register their readiness conditions on it; BeginShutdown flips
	// readiness before listeners close.
	Health *health.Registry
	// Runtime is the background go_*/process_* gauge collector, started
	// by New and resampled before every /metrics scrape.
	Runtime *obsruntime.Collector
	// SLO evaluates latency objectives registered via TrackSLO into
	// slo_* gauges and the /statusz SLO block.
	SLO *slo.Tracker
	// Prof is the continuous profiler, set by StartProfiler (nil when
	// the daemon does not opt in).
	Prof *obsprof.Profiler

	start   time.Time
	statusz statusz
	sloLoop bool
}

// New builds the app: named logger on the default registry with build
// info registered, the runtime collector running, and empty health and
// SLO registries. If version is true (the -version flag), it prints
// build information and exits — callers invoke it right after
// flag.Parse and never see it return in that case.
func New(name string, version bool) *App {
	if version {
		fmt.Println(obs.Version())
		os.Exit(0)
	}
	a := &App{
		Name:   name,
		Log:    obs.NewLogger(name),
		Reg:    obs.Default,
		Health: health.NewRegistry(),
		start:  time.Now(),
	}
	a.Reg.RegisterBuildInfo()
	a.Health.Instrument(a.Reg)
	a.Runtime = obsruntime.Start(a.Reg, 0)
	a.SLO = slo.NewTracker(a.Reg)
	return a
}

// TrackSLO registers a latency objective over histograms and (on first
// use) starts the background evaluation loop.
func (a *App) TrackSLO(obj slo.Objective, windows []time.Duration, hists ...*obs.Histogram) {
	a.SLO.Track(obj, windows, hists...)
	if !a.sloLoop {
		a.sloLoop = true
		a.SLO.Start(0)
	}
	a.SLO.Evaluate()
}

// BeginShutdown fails readiness (liveness is untouched) so load
// balancers stop routing here, logs the drain, and sleeps for the grace
// period — the window in which probes observe not-ready while the
// listeners still answer. Call on SIGTERM, before closing servers.
func (a *App) BeginShutdown(grace time.Duration) {
	a.Health.BeginShutdown()
	a.Log.Info("draining", "reason", "shutdown", "grace", grace.String())
	if grace > 0 {
		time.Sleep(grace)
	}
}

// Close stops the background collectors. Safe to call more than once;
// the daemons defer it, tests use it for cleanup.
func (a *App) Close() {
	a.Runtime.Stop()
	a.SLO.Stop()
	if a.Prof != nil {
		a.Prof.Stop()
	}
}

// Fatal logs the error and exits non-zero.
func (a *App) Fatal(msg string, err error) {
	a.Log.Error(msg, "err", err)
	os.Exit(1)
}

// SignalContext returns a context cancelled on SIGINT/SIGTERM. The
// returned stop releases the signal handlers; calling it after the
// first signal restores default delivery so a second signal kills the
// process outright.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// ObservabilityMux returns a mux serving the full operational surface:
// GET /metrics (with a fresh runtime sample per scrape), the probe
// endpoints /healthz and /readyz, the human-readable /statusz, and the
// pprof handlers under /debug/pprof/.
func (a *App) ObservabilityMux() *http.ServeMux {
	mux := http.NewServeMux()
	metrics := a.Reg.Handler()
	mux.Handle("GET /metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		a.Runtime.Sample()
		metrics.ServeHTTP(w, r)
	}))
	mux.Handle("GET /healthz", a.Health.LivenessHandler())
	mux.Handle("GET /readyz", a.Health.ReadinessHandler())
	mux.Handle("GET /statusz", a.StatusHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/prof/delta", obsprof.DeltaHandler())
	return mux
}

// HTTPServer wraps handler in a server with the repository's standard
// timeouts.
func HTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// ServeObservability starts the /metrics + pprof endpoint on addr in
// the background and returns the server (nil when addr is empty, i.e.
// the endpoint is disabled). Listen errors are logged, not fatal — a
// daemon must not die because its metrics port is taken.
func (a *App) ServeObservability(addr string) *http.Server {
	if addr == "" {
		return nil
	}
	srv := HTTPServer(addr, a.ObservabilityMux())
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			a.Log.Error("metrics listener", "err", err)
		}
	}()
	a.Log.Info("metrics listening", "addr", addr)
	return srv
}

// Shutdown gracefully stops an http.Server (nil is fine) within
// timeout.
func Shutdown(srv *http.Server, timeout time.Duration) {
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	_ = srv.Shutdown(ctx)
}
