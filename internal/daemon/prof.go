package daemon

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/obs/prof"
)

// ProfFlags is the daemons' shared continuous-profiler flag block.
// Contention profiling stays off unless -prof-mutex-fraction /
// -prof-block-rate are set — it taxes every lock operation — and
// periodic capture stays off unless -prof-dir names a directory.
type ProfFlags struct {
	Dir           string
	Interval      time.Duration
	Keep          int
	MutexFraction int
	BlockRate     int
}

// RegisterProfFlags installs the -prof-* flags on fs.
func RegisterProfFlags(fs *flag.FlagSet) *ProfFlags {
	var f ProfFlags
	fs.StringVar(&f.Dir, "prof-dir", "", "continuous-profile capture `directory` (empty = no periodic capture)")
	fs.DurationVar(&f.Interval, "prof-interval", time.Minute, "interval between profile capture sets")
	fs.IntVar(&f.Keep, "prof-keep", 10, "profile capture sets to retain")
	fs.IntVar(&f.MutexFraction, "prof-mutex-fraction", 0, "mutex profile sampling fraction (0 = off, 1 = every contention event)")
	fs.IntVar(&f.BlockRate, "prof-block-rate", 0, "block profile rate in ns of blocking per sample (0 = off)")
	return &f
}

// StartProfiler starts the continuous profiler from the parsed flags,
// stores it on the App (Close stops it), and registers the /statusz
// profiling section — config plus, when mutex profiling is on, the top
// contended lock sites. Call once, after New and flag parsing.
func (a *App) StartProfiler(f *ProfFlags) error {
	p, err := prof.Start(prof.Config{
		Dir:           f.Dir,
		Interval:      f.Interval,
		Keep:          f.Keep,
		MutexFraction: f.MutexFraction,
		BlockRate:     f.BlockRate,
	}, a.Reg, a.Log)
	if err != nil {
		return err
	}
	a.Prof = p
	a.StatusSection("profiling", func() []KV {
		rows := []KV{
			{"capture_dir", orDash(f.Dir)},
			{"mutex_fraction", fmt.Sprintf("%d", f.MutexFraction)},
			{"block_rate_ns", fmt.Sprintf("%d", f.BlockRate)},
		}
		if f.MutexFraction <= 0 {
			rows = append(rows, KV{"contention", "mutex profiling off (-prof-mutex-fraction to enable)"})
			return rows
		}
		sites := prof.TopContended(5)
		if len(sites) == 0 {
			rows = append(rows, KV{"contention", "no contention recorded"})
			return rows
		}
		for i, s := range sites {
			rows = append(rows, KV{
				fmt.Sprintf("contended_%d", i+1),
				fmt.Sprintf("%s — %d events, %d delay cycles", s.Site, s.Count, s.Delay),
			})
		}
		return rows
	})
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}
