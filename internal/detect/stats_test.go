package detect

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRunStatsCollected: every Run carries stage timings, the worker
// busy vector, and the funnel mirror, with no obs registry wired.
func TestRunStatsCollected(t *testing.T) {
	res := runDetector(t, Config{})
	st := res.Stats
	if st == nil {
		t.Fatal("Result.Stats is nil")
	}
	wantStages := []string{StageExtract, StageMine, StageClassify}
	if len(st.Stages) != len(wantStages) {
		t.Fatalf("stages = %+v, want %v", st.Stages, wantStages)
	}
	for i, name := range wantStages {
		if st.Stages[i].Stage != name {
			t.Errorf("stage[%d] = %s, want %s", i, st.Stages[i].Stage, name)
		}
	}
	if st.Stage(StageExtract).Items != res.Funnel.TotalNameservers {
		t.Errorf("extract items = %d, want %d", st.Stage(StageExtract).Items, res.Funnel.TotalNameservers)
	}
	if st.Workers != 1 || len(st.WorkerBusy) != 1 {
		t.Errorf("workers = %d, busy = %v, want 1 worker", st.Workers, st.WorkerBusy)
	}
	if st.Funnel != res.Funnel {
		t.Errorf("stats funnel %+v != result funnel %+v", st.Funnel, res.Funnel)
	}
	if st.MatchesByMethod["sink"] == 0 || st.MatchesByMethod["marker"] == 0 || st.MatchesByMethod["original"] == 0 {
		t.Errorf("matches by method = %v, want all three methods", st.MatchesByMethod)
	}

	var buf bytes.Buffer
	st.WriteReport(&buf)
	for _, frag := range []string{"detect.extract", "funnel:", "matches:", "worker utilization"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("report missing %q:\n%s", frag, buf.String())
		}
	}
	buf.Reset()
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded RunStats
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("stats JSON does not round-trip: %v", err)
	}
	if decoded.Funnel != st.Funnel {
		t.Errorf("JSON funnel = %+v, want %+v", decoded.Funnel, st.Funnel)
	}
}

// TestRunRecordsObs wires a registry with a fake clock and checks the
// span histograms and funnel counters land in it.
func TestRunRecordsObs(t *testing.T) {
	db, who, dir := fixture()
	reg := obs.NewRegistry()
	base := time.Unix(1000, 0)
	var tick atomic.Int64 // advancing fake clock, safe across workers
	reg.Now = func() time.Time {
		return base.Add(time.Duration(tick.Add(1)) * time.Millisecond)
	}
	RegisterMetrics(reg)
	det := &Detector{DB: db, WHOIS: who, Dir: dir, Cfg: Config{Workers: 2}, Obs: reg}
	res := det.Run()

	if got := reg.Counter(MetricScanned, "").Value(); got != uint64(res.Funnel.TotalNameservers) {
		t.Errorf("scanned counter = %d, want %d", got, res.Funnel.TotalNameservers)
	}
	if got := reg.Counter(MetricSacrificial, "").Value(); got != uint64(res.Funnel.Sacrificial) {
		t.Errorf("sacrificial counter = %d, want %d", got, res.Funnel.Sacrificial)
	}
	h := reg.HistogramVec(obs.SpanSecondsMetric, "", nil, "stage").With(StageExtract)
	if h.Count() != 1 {
		t.Errorf("extract span count = %d, want 1", h.Count())
	}
	if res.Stats.Workers != 2 || len(res.Stats.WorkerBusy) != 2 {
		t.Errorf("workers = %d busy = %v, want 2", res.Stats.Workers, res.Stats.WorkerBusy)
	}
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"detect_candidates_total",
		`pipeline_stage_runs_total{stage="detect.classify"} 1`,
		`detect_idiom_matches_total{method="marker"}`,
	} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("exposition missing %q", frag)
		}
	}
}
