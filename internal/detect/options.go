package detect

import (
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/whois"
	"repro/internal/zonedb"
)

// Option configures a Detector built with NewDetector. Options exist so
// Config stops growing a field per knob; new tuning should be an Option.
type Option func(*Detector)

// NewDetector wires a detection run over the three data sources the
// methodology reads: the zone database, the WHOIS history, and the
// registry-operator directory.
func NewDetector(db *zonedb.DB, wh *whois.History, dir *registry.Directory, opts ...Option) *Detector {
	d := &Detector{DB: db, WHOIS: wh, Dir: dir}
	for _, opt := range opts {
		opt(d)
	}
	return d
}

// WithWorkers shards the extraction and classify stages across n
// goroutines. n <= 1 runs sequentially; output is identical either way.
func WithWorkers(n int) Option {
	return func(d *Detector) { d.Cfg.Workers = n }
}

// WithClock overrides the detector's time source for stage timings.
// Timings never influence detection results; this exists so tests and
// benchmarks get deterministic stats.
func WithClock(now func() time.Time) Option {
	return func(d *Detector) { d.now = now }
}

// WithObs wires an observability registry for stage spans and funnel
// counters.
func WithObs(r *obs.Registry) Option {
	return func(d *Detector) { d.Obs = r }
}

// WithConfig replaces the whole Config (miner tuning, ablation switches).
// Apply it before per-field options like WithWorkers.
func WithConfig(cfg Config) Option {
	return func(d *Detector) { d.Cfg = cfg }
}
