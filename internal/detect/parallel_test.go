package detect

import (
	"bytes"
	"encoding/json"
	"testing"
)

// comparable renders everything deterministic about a Result — the
// funnel, mined patterns, every sacrificial record field for field and
// in order, and the match-method counters — leaving out only the wall
// timings.
func comparableResult(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Funnel      Funnel
		Patterns    []Pattern
		Sacrificial []Sacrificial
		Methods     map[string]int
	}{r.Funnel, r.Patterns, r.Sacrificial, r.Stats.MatchesByMethod})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestClassifyWorkersByteIdentical pins the parallel-classify contract:
// an 8-worker run emits a Result byte-identical to the serial one, not
// merely one with matching counts. (TestParallelWorkersIdentical checks
// the funnel across several worker counts; this is the strong form.)
func TestClassifyWorkersByteIdentical(t *testing.T) {
	seq := comparableResult(t, runDetector(t, Config{}))
	par := comparableResult(t, runDetector(t, Config{Workers: 8}))
	if !bytes.Equal(seq, par) {
		t.Fatalf("8-worker result differs from serial:\nserial: %s\nworkers: %s", seq, par)
	}
}

// TestNewDetectorOptions covers the functional-options constructor: the
// applied configuration must land on the detector fields the deprecated
// struct-literal form sets directly.
func TestNewDetectorOptions(t *testing.T) {
	db, who, dir := fixture()
	det := NewDetector(db, who, dir,
		WithConfig(Config{SkipMining: true}),
		WithWorkers(4))
	if det.DB != db || det.WHOIS != who || det.Dir != dir {
		t.Fatal("constructor dropped a dependency")
	}
	if !det.Cfg.SkipMining || det.Cfg.Workers != 4 {
		t.Fatalf("options not applied: %+v", det.Cfg)
	}
	res := det.Run()
	if res.Funnel.Sacrificial == 0 {
		t.Fatal("options-built detector found nothing")
	}
}
