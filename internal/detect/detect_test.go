package detect

import (
	"testing"

	"repro/internal/dates"
	"repro/internal/dnsname"
	"repro/internal/idioms"
	"repro/internal/registry"
	"repro/internal/whois"
	"repro/internal/zonedb"
)

func d(n int) dates.Day { return dates.Day(n) }

// fixture builds a hand-crafted longitudinal history exercising every
// stage of the methodology:
//
//   - glue-backed providers (not candidates);
//   - an Enom-style rename detectable only via original matching;
//   - a GoDaddy DROPTHISHOST rename (marker);
//   - a Network Solutions sink rename;
//   - a registry test nameserver (EMT-);
//   - a shared typo NS spanning two repositories (single-repo violation);
//   - an unclassifiable random rename (the WebFusion limitation);
//   - a hijack: the Enom sacrificial domain gets registered later.
func fixture() (*zonedb.DB, *whois.History, *registry.Directory) {
	db := zonedb.New()
	who := whois.New()
	verisign := registry.New("Verisign", nil, "com", "net", "edu", "gov")
	afilias := registry.New("Afilias", nil, "org", "info")
	neustar := registry.New("Neustar", nil, "biz", "us")
	dir := registry.NewDirectory(verisign, afilias, neustar)

	// Provider internetemc.com (Enom) with glue, victim whitecounty.net.
	db.DomainAdded("com", "internetemc.com", d(0))
	db.GlueAdded("com", "ns2.internetemc.com", d(0))
	db.DelegationAdded("com", "internetemc.com", "ns2.internetemc.com", d(0))
	db.DelegationAdded("net", "whitecounty.net", "ns2.internetemc.com", d(10))
	db.DomainAdded("net", "whitecounty.net", d(10))
	who.Observe("internetemc.com", d(0), "Enom")
	who.Observe("whitecounty.net", d(10), "Tucows")

	// Day 100: Enom renames ns2.internetemc.com -> ns2.internetemc1aj2kdy.biz.
	db.GlueRemoved("com", "ns2.internetemc.com", d(100))
	db.DelegationRemoved("com", "internetemc.com", "ns2.internetemc.com", d(100))
	db.DomainRemoved("com", "internetemc.com", d(100))
	db.DelegationRemoved("net", "whitecounty.net", "ns2.internetemc.com", d(100))
	db.DelegationAdded("net", "whitecounty.net", "ns2.internetemc1aj2kdy.biz", d(100))

	// Day 150: a hijacker registers internetemc1aj2kdy.biz.
	db.DomainAdded("biz", "internetemc1aj2kdy.biz", d(150))
	db.DelegationAdded("biz", "internetemc1aj2kdy.biz", "ns1.mpower.nl", d(150))
	who.Observe("internetemc1aj2kdy.biz", d(150), "openprovider")

	// GoDaddy DROPTHISHOST rename of gdhost.com's host, victim gdvictim.com.
	db.DomainAdded("com", "gdhost.com", d(0))
	db.GlueAdded("com", "ns1.gdhost.com", d(0))
	db.DomainAdded("com", "gdvictim.com", d(5))
	db.DelegationAdded("com", "gdvictim.com", "ns1.gdhost.com", d(5))
	who.Observe("gdhost.com", d(0), "GoDaddy")
	db.GlueRemoved("com", "ns1.gdhost.com", d(200))
	db.DomainRemoved("com", "gdhost.com", d(200))
	db.DelegationRemoved("com", "gdvictim.com", "ns1.gdhost.com", d(200))
	db.DelegationAdded("com", "gdvictim.com", "dropthishost-aaaa-bbbb.biz", d(200))

	// Network Solutions sink rename, victim nsvictim.com.
	db.DomainAdded("org", "lamedelegation.org", d(0))
	db.DomainAdded("com", "nsvictim.com", d(5))
	db.DelegationAdded("com", "nsvictim.com", "abc123xyz.lamedelegation.org", d(300))
	who.Observe("lamedelegation.org", d(0), "Network Solutions")

	// Registry test nameserver.
	db.DomainAdded("com", "emt-t-1-2-u.com", d(50))
	db.DelegationAdded("com", "emt-t-1-2-u.com", "emt-ns1.emt-t-1-2-u.com", d(50))
	db.DelegationRemoved("com", "emt-t-1-2-u.com", "emt-ns1.emt-t-1-2-u.com", d(57))
	db.DomainRemoved("com", "emt-t-1-2-u.com", d(57))

	// Shared typo used by a .com and a .org domain (two repositories).
	db.DomainAdded("com", "typouser1.com", d(20))
	db.DelegationAdded("com", "typouser1.com", "ns1.provder.info", d(20))
	db.DomainAdded("org", "typouser2.org", d(25))
	db.DelegationAdded("org", "typouser2.org", "ns1.provder.info", d(25))

	// A same-operator impossibility: an unresolvable .com nameserver
	// referenced only by .com domains. A rename target is always external
	// to the repository that performed it, so this cannot be sacrificial
	// (the first clause of the §3.2.3 elimination).
	db.DomainAdded("com", "sameop.com", d(30))
	db.DelegationAdded("com", "sameop.com", "ns1.neverexisted.com", d(30))

	// A PLEASEDROPTHISHOST rename colliding with an already-registered
	// brand-protection domain (§4's 3,704 accidental collisions).
	db.DomainAdded("biz", "brandname.biz", d(0)) // pre-existing registration
	db.DomainAdded("com", "brandname.com", d(0))
	db.GlueAdded("com", "ns1.brandname.com", d(0))
	db.DomainAdded("com", "collvictim.com", d(5))
	db.DelegationAdded("com", "collvictim.com", "ns1.brandname.com", d(5))
	who.Observe("brandname.com", d(0), "GoDaddy")
	db.GlueRemoved("com", "ns1.brandname.com", d(350))
	db.DomainRemoved("com", "brandname.com", d(350))
	db.DelegationRemoved("com", "collvictim.com", "ns1.brandname.com", d(350))
	db.DelegationAdded("com", "collvictim.com", "pleasedropthishostzz.brandname.biz", d(350))

	// An unclassifiable random rename (no marker, no original substring).
	db.DomainAdded("com", "wfvictim.com", d(5))
	db.DelegationAdded("com", "wfvictim.com", "ns1.wfhost.com", d(5))
	db.DomainAdded("com", "wfhost.com", d(0))
	db.GlueAdded("com", "ns1.wfhost.com", d(0))
	who.Observe("wfhost.com", d(0), "WebFusion")
	db.GlueRemoved("com", "ns1.wfhost.com", d(400))
	db.DomainRemoved("com", "wfhost.com", d(400))
	db.DelegationRemoved("com", "wfvictim.com", "ns1.wfhost.com", d(400))
	db.DelegationAdded("com", "wfvictim.com", "qx7zk2m9p4w1.biz", d(400))

	db.Close(d(1000))
	return db, who, dir
}

func runDetector(t *testing.T, cfg Config) *Result {
	t.Helper()
	db, who, dir := fixture()
	det := &Detector{DB: db, WHOIS: who, Dir: dir, Cfg: cfg}
	return det.Run()
}

func TestOriginalMatching(t *testing.T) {
	res := runDetector(t, Config{SkipMining: true})
	s := res.Lookup("ns2.internetemc1aj2kdy.biz")
	if s == nil {
		t.Fatal("Enom rename not detected")
	}
	if s.Idiom != idioms.EnomRandom || s.Registrar != "Enom" {
		t.Errorf("idiom/registrar = %s/%s", s.Idiom, s.Registrar)
	}
	if s.Original != "ns2.internetemc.com" {
		t.Errorf("original = %s", s.Original)
	}
	if s.Created != d(100) {
		t.Errorf("created = %v", s.Created)
	}
	if len(s.Domains) != 1 || s.Domains[0].Name != "whitecounty.net" {
		t.Errorf("domains = %+v", s.Domains)
	}
}

func TestHijackDetection(t *testing.T) {
	res := runDetector(t, Config{SkipMining: true})
	s := res.Lookup("ns2.internetemc1aj2kdy.biz")
	if s == nil || !s.Hijackable() || !s.Hijacked() {
		t.Fatalf("hijack not detected: %+v", s)
	}
	if s.HijackedOn != d(150) {
		t.Errorf("HijackedOn = %v", s.HijackedOn)
	}
	gd := res.Lookup("dropthishost-aaaa-bbbb.biz")
	if gd == nil || gd.Hijacked() {
		t.Fatalf("unreg GoDaddy NS should be hijackable but not hijacked: %+v", gd)
	}
}

func TestMarkerClassification(t *testing.T) {
	res := runDetector(t, Config{SkipMining: true})
	s := res.Lookup("dropthishost-aaaa-bbbb.biz")
	if s == nil || s.Idiom != idioms.DropThisHost || s.Registrar != "GoDaddy" {
		t.Fatalf("marker classification: %+v", s)
	}
}

func TestSinkClassification(t *testing.T) {
	res := runDetector(t, Config{SkipMining: true})
	s := res.Lookup("abc123xyz.lamedelegation.org")
	if s == nil || s.Class != idioms.NonHijackable {
		t.Fatalf("sink classification: %+v", s)
	}
	if s.Hijackable() || s.Hijacked() {
		t.Error("sink NS must not be hijackable")
	}
}

func TestTestNSFiltered(t *testing.T) {
	res := runDetector(t, Config{SkipMining: true})
	if res.Funnel.TestNameservers != 1 {
		t.Errorf("test NS filtered = %d", res.Funnel.TestNameservers)
	}
	if res.Lookup("emt-ns1.emt-t-1-2-u.com") != nil {
		t.Error("test NS classified as sacrificial")
	}
}

func TestSingleRepoViolation(t *testing.T) {
	res := runDetector(t, Config{SkipMining: true})
	// Two violations: the cross-repository shared typo and the
	// same-operator .com-serving-.com candidate.
	if res.Funnel.SingleRepoViolations != 2 {
		t.Errorf("violations = %d", res.Funnel.SingleRepoViolations)
	}
	if res.Lookup("ns1.provder.info") != nil {
		t.Error("cross-repo typo classified as sacrificial")
	}
	if res.Lookup("ns1.neverexisted.com") != nil {
		t.Error("same-operator candidate classified as sacrificial")
	}
	// Ablation: with the check disabled, it lands in unclassified
	// (original matching still fails), not in sacrificial.
	res2 := runDetector(t, Config{SkipMining: true, SkipSingleRepoCheck: true})
	if res2.Funnel.SingleRepoViolations != 0 {
		t.Error("ablation did not disable the check")
	}
	if res2.Lookup("ns1.provder.info") != nil {
		t.Error("typo misclassified even without the repo check")
	}
}

func TestUndetectableIdiomMissed(t *testing.T) {
	res := runDetector(t, Config{SkipMining: true})
	if res.Lookup("qx7zk2m9p4w1.biz") != nil {
		t.Error("random rename without structure should NOT be classified (§3.3)")
	}
	if res.Funnel.Unclassified == 0 {
		t.Error("unclassified count should be nonzero")
	}
}

func TestFunnelArithmetic(t *testing.T) {
	res := runDetector(t, Config{SkipMining: true})
	f := res.Funnel
	if f.Candidates != f.TestNameservers+f.SingleRepoViolations+f.Unclassified+f.Sacrificial {
		t.Errorf("funnel does not add up: %+v", f)
	}
	if f.TotalNameservers < f.Candidates {
		t.Errorf("total < candidates: %+v", f)
	}
}

func TestResolvableNSNotCandidates(t *testing.T) {
	res := runDetector(t, Config{SkipMining: true})
	// The glue-backed provider hosts must never appear as candidates.
	if res.Lookup("ns2.internetemc.com") != nil || res.Lookup("ns1.gdhost.com") != nil {
		t.Error("resolvable NS classified as sacrificial")
	}
}

func TestValueAndDomainAccessors(t *testing.T) {
	res := runDetector(t, Config{SkipMining: true})
	s := res.Lookup("ns2.internetemc1aj2kdy.biz")
	if s.NumDomains() != 1 {
		t.Errorf("NumDomains = %d", s.NumDomains())
	}
	// whitecounty.net delegated from day 100 through close (1000).
	if got := s.Value(); got != 901 {
		t.Errorf("Value = %d, want 901", got)
	}
}

func TestCollisionClassification(t *testing.T) {
	res := runDetector(t, Config{SkipMining: true})
	s := res.Lookup("pleasedropthishostzz.brandname.biz")
	if s == nil {
		t.Fatal("collision rename not detected")
	}
	if s.Idiom != idioms.PleaseDropThisHost {
		t.Errorf("idiom = %s", s.Idiom)
	}
	if !s.Collision {
		t.Error("collision with a registered domain not flagged")
	}
	if s.Hijackable() || s.Hijacked() {
		t.Error("collision names cannot be hijacked by registration")
	}
}

func TestMiningFindsMarkers(t *testing.T) {
	names := []dnsname.Name{}
	for i := 0; i < 40; i++ {
		names = append(names,
			dnsname.Name("dropthishost-"+string(rune('a'+i%26))+"x.biz"),
			dnsname.Name("rand"+string(rune('a'+i%26))+"q.lamedelegation.org"),
		)
	}
	pats := MineSubstrings(names, MinerConfig{MinLen: 8, MinSupport: 10, Top: 10})
	foundMarker, foundSink := false, false
	for _, p := range pats {
		if p.Substring == "dropthishost-" || p.Substring == "dropthishost" {
			foundMarker = true
		}
		if p.Substring == "lamedelegation.org" {
			foundSink = true
		}
	}
	if !foundMarker || !foundSink {
		t.Fatalf("patterns = %+v", pats)
	}
}

func TestMiningIgnoresRandomNoise(t *testing.T) {
	var names []dnsname.Name
	for i := 0; i < 50; i++ {
		names = append(names, dnsname.Name("x"+string(rune('a'+i%26))+"9182736450.biz"))
	}
	pats := MineSubstrings(names, MinerConfig{MinLen: 8, MinSupport: 10, Top: 10})
	for _, p := range pats {
		if p.Substring == "9182736450" {
			t.Fatalf("digit noise mined: %+v", pats)
		}
	}
}

// TestParallelWorkersIdentical verifies that candidate extraction is
// independent of the worker count.
func TestParallelWorkersIdentical(t *testing.T) {
	seq := runDetector(t, Config{SkipMining: true})
	for _, workers := range []int{2, 4, 8} {
		par := runDetector(t, Config{SkipMining: true, Workers: workers})
		if seq.Funnel != par.Funnel {
			t.Fatalf("workers=%d: funnel %+v vs %+v", workers, par.Funnel, seq.Funnel)
		}
		if len(par.Sacrificial) != len(seq.Sacrificial) {
			t.Fatalf("workers=%d: %d vs %d sacrificial", workers, len(par.Sacrificial), len(seq.Sacrificial))
		}
		for i := range seq.Sacrificial {
			if par.Sacrificial[i].NS != seq.Sacrificial[i].NS ||
				par.Sacrificial[i].Idiom != seq.Sacrificial[i].Idiom {
				t.Fatalf("workers=%d: record %d differs", workers, i)
			}
		}
	}
}
