package detect

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
)

// Stage names recorded by Detector.Run, reused as the obs span stage
// labels.
const (
	StageExtract  = "detect.extract"
	StageMine     = "detect.mine"
	StageClassify = "detect.classify"
)

// Detector counter metric names (registered on the detector's obs
// registry; see RegisterMetrics).
const (
	MetricCandidates  = "detect_candidates_total"
	MetricScanned     = "detect_nameservers_scanned_total"
	MetricTestNS      = "detect_test_ns_eliminations_total"
	MetricSingleRepo  = "detect_single_repo_eliminations_total"
	MetricIdiom       = "detect_idiom_matches_total"
	MetricUnclass     = "detect_unclassified_total"
	MetricSacrificial = "detect_sacrificial_total"
)

// StageTiming is one pipeline stage's wall time and throughput.
type StageTiming struct {
	Stage    string        `json:"stage"`
	Duration time.Duration `json:"nanoseconds"`
	Items    int           `json:"items"`
}

// Rate returns items per second (zero when the stage was too fast to
// time).
func (t StageTiming) Rate() float64 {
	if t.Duration <= 0 {
		return 0
	}
	return float64(t.Items) / t.Duration.Seconds()
}

// RunStats is the timing side of one Detector.Run: what `-stats`
// reports and later perf PRs measure themselves against.
type RunStats struct {
	Wall   time.Duration `json:"wall_nanoseconds"`
	Stages []StageTiming `json:"stages"`
	// Workers is the extraction worker count actually used (>= 1).
	Workers int `json:"workers"`
	// WorkerBusy holds each extraction worker's busy time; with one
	// worker it equals the extract stage duration.
	WorkerBusy []time.Duration `json:"worker_busy_nanoseconds"`
	// ClassifyBusy holds each classification worker's busy time — the
	// companion measurement to WorkerBusy for the stage the ROADMAP
	// flags as slower parallel than serial.
	ClassifyBusy []time.Duration `json:"classify_busy_nanoseconds,omitempty"`
	// MatchesByMethod counts classifications by match method (sink,
	// marker, original).
	MatchesByMethod map[string]int `json:"matches_by_method"`
	Funnel          Funnel         `json:"funnel"`
}

// Stage returns the named stage's timing, or a zero value.
func (s *RunStats) Stage(name string) StageTiming {
	for _, st := range s.Stages {
		if st.Stage == name {
			return st
		}
	}
	return StageTiming{Stage: name}
}

// WorkerUtilization returns mean worker busy-fraction during the
// extraction stage: 1.0 means every worker was busy the whole stage,
// lower values mean shard imbalance or spawn overhead.
func (s *RunStats) WorkerUtilization() float64 {
	return utilization(s.Stage(StageExtract).Duration, s.WorkerBusy)
}

// ClassifyUtilization returns the same busy-fraction for the
// classification stage (0 when classification ran serially).
func (s *RunStats) ClassifyUtilization() float64 {
	return utilization(s.Stage(StageClassify).Duration, s.ClassifyBusy)
}

func utilization(wall time.Duration, busy []time.Duration) float64 {
	if wall <= 0 || len(busy) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range busy {
		total += d
	}
	return total.Seconds() / (wall.Seconds() * float64(len(busy)))
}

// WriteReport prints the human-readable stage-timing report.
func (s *RunStats) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "detection pipeline: %s wall, %d workers, %.1f%% worker utilization\n",
		s.Wall.Round(time.Microsecond), s.Workers, 100*s.WorkerUtilization())
	if len(s.ClassifyBusy) > 0 {
		fmt.Fprintf(w, "  classify utilization: %.1f%% across %d workers\n",
			100*s.ClassifyUtilization(), len(s.ClassifyBusy))
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  stage\ttime\titems\titems/s")
	for _, st := range s.Stages {
		fmt.Fprintf(tw, "  %s\t%s\t%d\t%.0f\n",
			st.Stage, st.Duration.Round(time.Microsecond), st.Items, st.Rate())
	}
	tw.Flush()
	f := s.Funnel
	fmt.Fprintf(w, "  funnel: %d nameservers -> %d candidates; -%d test, -%d single-repo, -%d unclassified -> %d sacrificial\n",
		f.TotalNameservers, f.Candidates, f.TestNameservers, f.SingleRepoViolations, f.Unclassified, f.Sacrificial)
	if len(s.MatchesByMethod) > 0 {
		methods := make([]string, 0, len(s.MatchesByMethod))
		for m := range s.MatchesByMethod {
			methods = append(methods, m)
		}
		sort.Strings(methods)
		fmt.Fprint(w, "  matches:")
		for _, m := range methods {
			fmt.Fprintf(w, " %s=%d", m, s.MatchesByMethod[m])
		}
		fmt.Fprintln(w)
	}
}

// WriteJSON dumps the stats as one JSON object.
func (s *RunStats) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// RegisterMetrics pre-creates the detector's metric families (and the
// shared span families) on reg, so a /metrics scrape announces the
// schema even before a detection run has executed.
func RegisterMetrics(reg *obs.Registry) {
	reg.RegisterSpanFamilies()
	reg.Counter(MetricScanned, "Nameservers scanned by candidate extraction.")
	reg.Counter(MetricCandidates, "Unresolvable-at-first-reference candidates.")
	reg.Counter(MetricTestNS, "Candidates eliminated as registry test nameservers.")
	reg.Counter(MetricSingleRepo, "Candidates eliminated by the single-repository check.")
	reg.CounterVec(MetricIdiom, "Sacrificial nameservers classified, by match method.", "method")
	reg.Counter(MetricUnclass, "Candidates left unclassified.")
	reg.Counter(MetricSacrificial, "Sacrificial nameservers detected.")
}
