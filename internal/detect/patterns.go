// Package detect implements the paper's methodology for identifying
// sacrificial nameservers (§3):
//
//  1. Candidate extraction: nameservers that are unresolvable at the
//     moment a domain first delegates to them (§3.2.1).
//  2. Pattern mining: a common-substring tool over candidate names that
//     surfaces registrar renaming idioms (§3.2.2), plus removal of
//     registry test nameservers (the EMT- pattern).
//  3. Original-nameserver matching: for idioms that embed the renamed
//     host's second-level label, match each candidate against the
//     nameservers its affected domains used the day before (§3.2.3),
//     attributing the rename to a registrar via WHOIS history.
//  4. The single-repository property check, eliminating candidates whose
//     affected domains span EPP repositories (§3.1 property 3).
//
// The detector consumes only public-equivalent data: the longitudinal
// zone database, WHOIS history, and the IANA-style TLD-to-registry
// directory. It never reads simulator ground truth.
package detect

import (
	"sort"
	"strings"

	"repro/internal/dnsname"
)

// Pattern is one mined common substring with its support (the number of
// distinct candidate names containing it).
type Pattern struct {
	Substring string
	Support   int
}

// MinerConfig tunes the common-substring miner.
type MinerConfig struct {
	// MinLen is the shortest substring considered (default 8).
	MinLen int
	// MaxLen caps substring length (default 24).
	MaxLen int
	// MinSupport is the minimum number of distinct names a substring
	// must appear in to be reported (default 25).
	MinSupport int
	// Top bounds the number of reported patterns (default 50).
	Top int
}

func (c *MinerConfig) defaults() {
	if c.MinLen == 0 {
		c.MinLen = 8
	}
	if c.MaxLen == 0 {
		c.MaxLen = 24
	}
	if c.MinSupport == 0 {
		c.MinSupport = 25
	}
	if c.Top == 0 {
		c.Top = 50
	}
}

// MineSubstrings finds common substrings across candidate nameserver
// names — the tool of §3.2.2. Two families of strings are examined: the
// leading label of each name (where markers like DROPTHISHOST live) and
// the registered domain as a unit (where sink domains like
// LAMEDELEGATION.ORG live). Reported patterns are maximal: a substring
// wholly contained in a longer pattern with the same support is dropped.
func MineSubstrings(names []dnsname.Name, cfg MinerConfig) []Pattern {
	cfg.defaults()
	support := make(map[string]int)
	perName := make(map[string]bool)
	for _, n := range names {
		clear(perName)
		label := n.FirstLabel()
		if len(label) > 40 {
			label = label[:40]
		}
		for l := cfg.MinLen; l <= cfg.MaxLen && l <= len(label); l++ {
			for i := 0; i+l <= len(label); i++ {
				sub := label[i : i+l]
				if mostlyRandom(sub) {
					continue
				}
				perName[sub] = true
			}
		}
		if reg, ok := dnsname.RegisteredDomain(n); ok {
			perName[string(reg)] = true
		}
		for sub := range perName {
			support[sub]++
		}
	}
	var pats []Pattern
	for sub, sup := range support {
		if sup >= cfg.MinSupport {
			pats = append(pats, Pattern{Substring: sub, Support: sup})
		}
	}
	sort.Slice(pats, func(i, j int) bool {
		if pats[i].Support != pats[j].Support {
			return pats[i].Support > pats[j].Support
		}
		if len(pats[i].Substring) != len(pats[j].Substring) {
			return len(pats[i].Substring) > len(pats[j].Substring)
		}
		return pats[i].Substring < pats[j].Substring
	})
	// Keep maximal patterns only.
	var out []Pattern
	for _, p := range pats {
		subsumed := false
		for _, q := range out {
			if q.Support == p.Support && strings.Contains(q.Substring, p.Substring) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, p)
		}
		if len(out) >= cfg.Top {
			break
		}
	}
	return out
}

// mostlyRandom rejects substrings dominated by digits or hex noise that
// cannot be a human-chosen marker. It keeps the miner's map small.
func mostlyRandom(s string) bool {
	digits := 0
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			digits++
		}
	}
	return digits*2 > len(s)
}
