package detect

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/dates"
	"repro/internal/dnsname"
	"repro/internal/idioms"
	"repro/internal/interval"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/registry"
	"repro/internal/resolve"
	"repro/internal/whois"
	"repro/internal/zonedb"
)

// Sacrificial is one detected sacrificial nameserver with everything the
// analyses need.
type Sacrificial struct {
	NS      dnsname.Name
	Created dates.Day // first appearance in any delegation
	Idiom   idioms.ID
	Class   idioms.Class
	// Registrar is the attributed registrar (from the idiom catalog for
	// marker/sink idioms, from WHOIS for original-based matches).
	Registrar string
	// Original is the nameserver this one was renamed from, when the
	// §3.2.3 history match identified it.
	Original dnsname.Name
	// RegDomain is the registrable domain an attacker would register.
	RegDomain dnsname.Name
	// Collision marks hijackable-idiom names whose domain was ALREADY
	// registered when the rename happened (the accidental
	// PLEASEDROPTHISHOST collisions of §4).
	Collision bool
	// HijackedOn is the first day at or after Created on which RegDomain
	// was observed registered; dates.None when never hijacked.
	HijackedOn dates.Day
	// Domains lists every domain that ever delegated to the nameserver,
	// with the days each delegation was visible.
	Domains []AffectedDomain
}

// AffectedDomain is one domain exposed by a sacrificial nameserver.
type AffectedDomain struct {
	Name  dnsname.Name
	Spans *interval.Set
}

// Hijackable reports whether the nameserver's domain could be (or could
// have been) registered by an attacker.
func (s *Sacrificial) Hijackable() bool {
	return s.Class == idioms.Hijackable && !s.Collision
}

// Hijacked reports whether the nameserver's domain was registered after
// creation.
func (s *Sacrificial) Hijacked() bool {
	return s.Hijackable() && s.HijackedOn != dates.None
}

// Value is the hijack value of §5.3: the total number of domain-days
// delegated to the nameserver.
func (s *Sacrificial) Value() int {
	v := 0
	for _, d := range s.Domains {
		v += d.Spans.TotalDays()
	}
	return v
}

// NumDomains returns the number of distinct affected domains.
func (s *Sacrificial) NumDomains() int { return len(s.Domains) }

// Funnel reports the candidate-elimination counts of §3.2, mirroring the
// paper's 20M -> 312,328 -> (-28,614 test) -> (-11,403 single-repo) ->
// 202,624 progression.
type Funnel struct {
	TotalNameservers     int
	Candidates           int
	TestNameservers      int
	SingleRepoViolations int
	Unclassified         int
	Sacrificial          int
}

// Config tunes a detection run.
type Config struct {
	// Miner configures the pattern-mining stage.
	Miner MinerConfig
	// SkipSingleRepoCheck disables the single-repository elimination
	// (ablation).
	SkipSingleRepoCheck bool
	// SkipMining skips the (purely reporting) substring-mining stage.
	SkipMining bool
	// Workers parallelizes the candidate-extraction stage (static
	// resolvability over every nameserver, the dominant cost) and the
	// classify stage, both sharded the same way. Zero or one runs
	// sequentially. Extraction workers use private resolver memos and
	// classify verdicts are applied in candidate order, so results are
	// byte-identical regardless of worker count.
	Workers int
}

// Result is a full detection run's output.
type Result struct {
	Funnel      Funnel
	Patterns    []Pattern
	Sacrificial []Sacrificial

	// Stats holds the run's stage timings (nil for results assembled
	// via NewResult rather than produced by Detector.Run).
	Stats *RunStats

	// byNS indexes Sacrificial by nameserver name.
	byNS map[dnsname.Name]int
}

// NewResult assembles a Result from pre-built records — used by tests
// and by tools that load detection output from storage.
func NewResult(sacrificial []Sacrificial, funnel Funnel) *Result {
	r := &Result{Funnel: funnel, Sacrificial: sacrificial, byNS: make(map[dnsname.Name]int, len(sacrificial))}
	for i := range sacrificial {
		r.byNS[sacrificial[i].NS] = i
	}
	return r
}

// Lookup returns the detected record for ns, or nil.
func (r *Result) Lookup(ns dnsname.Name) *Sacrificial {
	if i, ok := r.byNS[ns]; ok {
		return &r.Sacrificial[i]
	}
	return nil
}

// Detector wires the inputs of a detection run.
type Detector struct {
	DB    *zonedb.DB
	WHOIS *whois.History
	Dir   *registry.Directory
	Cfg   Config
	// Obs, when non-nil, receives stage spans and funnel counters
	// (RegisterMetrics pre-creates the families). Stage timings are
	// collected in Result.Stats either way.
	Obs *obs.Registry

	// now, when set (WithClock), overrides the time source.
	now func() time.Time
}

// zoneData is the read surface a detection run needs. A run takes the
// DB's published *zonedb.View once at the start and holds it throughout,
// so every worker reads one consistent generation lock-free, even while
// an ingest publishes behind it.
type zoneData interface {
	resolve.ZoneData
	Nameservers(fn func(ns dnsname.Name) bool)
	EdgesOf(ns dnsname.Name) []zonedb.Edge
	EdgeSpans(domain, ns dnsname.Name) *interval.Set
	DomainRegisteredOn(domain dnsname.Name, day dates.Day) bool
	DomainFirstSeenAfter(domain dnsname.Name, from dates.Day) dates.Day
}

// zoneData pins the view the run will read. A DB that was never closed
// has an empty published view, so legacy callers that skipped Close keep
// reading the DB directly (with its original semantics).
func (d *Detector) zoneData() zoneData {
	if v := d.DB.View(); v.Closed() {
		return v
	}
	return d.DB
}

// clock returns the time source: WithClock's when set, else the obs
// registry's (overridable in tests) when present, else the wall clock.
// Timings never influence detection results, so determinism of the
// methodology is preserved.
func (d *Detector) clock() func() time.Time {
	if d.now != nil {
		return d.now
	}
	if d.Obs != nil && d.Obs.Now != nil {
		return d.Obs.Now
	}
	return time.Now
}

// stage runs fn as one named pipeline stage: it times it, records an
// obs span (when a registry is wired) and a trace child span (when ctx
// carries one), and appends a StageTiming. fn receives the stage's
// trace context — extraction parents its worker spans on it — and
// returns the number of items the stage processed.
func (d *Detector) stage(ctx context.Context, stats *RunStats, name string, fn func(ctx context.Context) int) {
	now := d.clock()
	var sp *obs.Span
	if d.Obs != nil {
		sp = d.Obs.StartSpan(name)
	}
	ctx, tsp := trace.Start(ctx, name)
	t0 := now()
	n := fn(ctx)
	dur := now().Sub(t0)
	if sp != nil {
		sp.AddItems(n)
		sp.End()
	}
	tsp.SetAttrInt("items", n)
	tsp.End()
	stats.Stages = append(stats.Stages, StageTiming{Stage: name, Duration: dur, Items: n})
}

// candidate is one unresolvable-at-first-reference nameserver.
type candidate struct {
	ns    dnsname.Name
	first dates.Day
}

// extractCandidates runs stage 1 (§3.2.1) over every observed
// nameserver, optionally in parallel. busy holds each worker's busy
// time (one entry in sequential mode) for the utilization report. Each
// parallel worker runs as a child span of ctx so shard imbalance is
// visible in the trace.
func (d *Detector) extractCandidates(ctx context.Context, zd zoneData) (total int, candidates []candidate, busy []time.Duration) {
	now := d.clock()
	var all []dnsname.Name
	zd.Nameservers(func(ns dnsname.Name) bool {
		all = append(all, ns)
		return true
	})
	total = len(all)
	workers := d.Cfg.Workers
	if workers <= 1 {
		t0 := now()
		static := resolve.NewStatic(zd)
		for _, ns := range all {
			if bad, first := static.UnresolvableAtFirstReference(ns); bad {
				candidates = append(candidates, candidate{ns, first})
			}
		}
		busy = []time.Duration{now().Sub(t0)}
	} else {
		// Shard the nameserver list; each worker owns a resolver (the
		// memo is not concurrency-safe, and sharing one would not help:
		// resolution chains rarely cross shards).
		var wg sync.WaitGroup
		results := make([][]candidate, workers)
		busy = make([]time.Duration, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				_, wsp := trace.Start(ctx, "detect.extract.worker")
				wsp.SetAttrInt("worker", w)
				t0 := now()
				static := resolve.NewStatic(zd)
				var mine []candidate
				for i := w; i < len(all); i += workers {
					ns := all[i]
					if bad, first := static.UnresolvableAtFirstReference(ns); bad {
						mine = append(mine, candidate{ns, first})
					}
				}
				results[w] = mine
				busy[w] = now().Sub(t0)
				wsp.SetAttrInt("items", (len(all)+workers-1-w)/workers)
				wsp.End()
			}(w)
		}
		wg.Wait()
		for _, part := range results {
			candidates = append(candidates, part...)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].ns < candidates[j].ns })
	return total, candidates, busy
}

// Run executes the full methodology.
//
// Deprecated: use RunContext, which carries cancellation and trace
// context through the pipeline stages. Run is equivalent to
// RunContext(context.Background()).
func (d *Detector) Run() *Result {
	return d.RunContext(context.Background())
}

// RunContext executes the full methodology with each pipeline stage
// running as a child span of the trace carried by ctx (see
// internal/obs/trace). The run reads the DB's published View, pinned at
// the start, so it is safe to run concurrently with further ingestion.
func (d *Detector) RunContext(ctx context.Context) *Result {
	ctx, rsp := trace.Start(ctx, "detect.run")
	defer rsp.End()
	now := d.clock()
	start := now()
	zd := d.zoneData()
	res := &Result{byNS: make(map[dnsname.Name]int)}
	stats := &RunStats{Workers: 1, MatchesByMethod: make(map[string]int)}
	if d.Cfg.Workers > 1 {
		stats.Workers = d.Cfg.Workers
	}

	// Stage 1: unresolvable-at-first-reference candidates.
	var candidates []candidate
	d.stage(ctx, stats, StageExtract, func(ctx context.Context) int {
		var total int
		total, candidates, stats.WorkerBusy = d.extractCandidates(ctx, zd)
		res.Funnel.TotalNameservers = total
		return total
	})
	res.Funnel.Candidates = len(candidates)

	// Stage 2a: mine patterns (reporting; classification uses the
	// confirmed catalog, as the paper confirmed idioms with registrars).
	if !d.Cfg.SkipMining {
		d.stage(ctx, stats, StageMine, func(context.Context) int {
			names := make([]dnsname.Name, len(candidates))
			for i, c := range candidates {
				names[i] = c.ns
			}
			res.Patterns = MineSubstrings(names, d.Cfg.Miner)
			return len(candidates)
		})
	}

	d.stage(ctx, stats, StageClassify, func(ctx context.Context) int {
		// Classification of each candidate is a pure function of the
		// pinned view, so it shards across workers exactly like
		// extraction: worker w owns candidates w, w+workers, ... and
		// writes its verdicts into a position-indexed slice. The verdicts
		// are then applied serially in candidate order, so funnel counts,
		// match-method stats, and the emitted Sacrificial records are
		// byte-identical to a sequential run.
		outs := make([]outcome, len(candidates))
		workers := d.Cfg.Workers
		if workers > 1 && len(candidates) > 0 {
			var wg sync.WaitGroup
			stats.ClassifyBusy = make([]time.Duration, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					_, wsp := trace.Start(ctx, "detect.classify.worker")
					wsp.SetAttrInt("worker", w)
					t0 := now()
					n := 0
					for i := w; i < len(candidates); i += workers {
						outs[i] = d.classifyOne(zd, candidates[i])
						n++
					}
					stats.ClassifyBusy[w] = now().Sub(t0)
					wsp.SetAttrInt("items", n)
					wsp.End()
				}(w)
			}
			wg.Wait()
		} else {
			for i, c := range candidates {
				outs[i] = d.classifyOne(zd, c)
			}
		}
		for i, c := range candidates {
			switch o := outs[i]; o.kind {
			case outTest:
				res.Funnel.TestNameservers++
			case outSingleRepo:
				res.Funnel.SingleRepoViolations++
			case outSacrificial:
				d.emit(zd, res, c.ns, c.first, o.idiom, o.registrar, o.orig)
				stats.MatchesByMethod[o.method]++
			default:
				res.Funnel.Unclassified++
			}
		}
		return len(candidates)
	})
	res.Funnel.Sacrificial = len(res.Sacrificial)
	stats.Wall = now().Sub(start)
	stats.Funnel = res.Funnel
	res.Stats = stats
	d.recordFunnel(stats)
	d.recordPools(stats)
	return res
}

// recordPools mirrors the run's per-worker stage measurements into the
// shared pool_* metric families (one EndRound per Run), so detect's
// parallel stages report utilization and efficiency the same way the
// zonedb ingest pool does.
func (d *Detector) recordPools(stats *RunStats) {
	if d.Obs == nil {
		return
	}
	record := func(pool string, busy []time.Duration, items int, wall time.Duration) {
		if len(busy) == 0 || wall <= 0 {
			return
		}
		p := d.Obs.NewPoolStats(pool, len(busy))
		for i, b := range busy {
			w := p.Worker(i)
			w.ObserveBusy(b)
			// Stride sharding: worker i owns items i, i+n, ...
			w.AddItems((items + len(busy) - 1 - i) / len(busy))
		}
		p.EndRound(wall)
	}
	record("detect_extract", stats.WorkerBusy, stats.Stage(StageExtract).Items, stats.Stage(StageExtract).Duration)
	record("detect_classify", stats.ClassifyBusy, stats.Stage(StageClassify).Items, stats.Stage(StageClassify).Duration)
}

// recordFunnel mirrors the funnel counts into the obs registry.
func (d *Detector) recordFunnel(stats *RunStats) {
	if d.Obs == nil {
		return
	}
	f := stats.Funnel
	d.Obs.Counter(MetricScanned, "").Add(f.TotalNameservers)
	d.Obs.Counter(MetricCandidates, "").Add(f.Candidates)
	d.Obs.Counter(MetricTestNS, "").Add(f.TestNameservers)
	d.Obs.Counter(MetricSingleRepo, "").Add(f.SingleRepoViolations)
	d.Obs.Counter(MetricUnclass, "").Add(f.Unclassified)
	d.Obs.Counter(MetricSacrificial, "").Add(f.Sacrificial)
	for method, n := range stats.MatchesByMethod {
		d.Obs.CounterVec(MetricIdiom, "", "method").With(method).Add(n)
	}
}

// outcome is one candidate's classification verdict — the pure product
// of classifyOne, applied to the Result serially so parallel and
// sequential runs emit identical output.
type outcome struct {
	kind      int
	idiom     *idioms.Idiom
	registrar string
	orig      dnsname.Name
	method    string
}

const (
	outUnclassified = iota
	outTest
	outSingleRepo
	outSacrificial
)

// classifyOne runs stages 2b–4 for one candidate against the pinned
// view. It only reads zd, the WHOIS history, the registry directory, and
// the idiom catalog — all immutable during a run — so it is safe to call
// from many workers at once.
func (d *Detector) classifyOne(zd zoneData, c candidate) outcome {
	// Stage 2b: remove registry test nameservers.
	if idioms.IsTestNameserver(c.ns) {
		return outcome{kind: outTest}
	}
	// Sink and marker idioms classify directly.
	if idiom, ok := idioms.RecognizeSink(c.ns); ok {
		return outcome{kind: outSacrificial, idiom: idiom, registrar: idiom.Registrar, method: "sink"}
	}
	if idiom, ok := idioms.RecognizeMarker(c.ns); ok {
		return outcome{kind: outSacrificial, idiom: idiom, registrar: idiom.Registrar, method: "marker"}
	}
	// Stage 3: single-repository property.
	if !d.Cfg.SkipSingleRepoCheck && d.violatesSingleRepo(zd, c.ns) {
		return outcome{kind: outSingleRepo}
	}
	// Stage 4: original-nameserver history match.
	if idiom, registrarName, orig, ok := d.matchOriginal(zd, c.ns, c.first); ok {
		return outcome{kind: outSacrificial, idiom: idiom, registrar: registrarName, orig: orig, method: "original"}
	}
	return outcome{kind: outUnclassified}
}

// violatesSingleRepo applies property 3 of §3.1: the candidate cannot be
// a rename product if its affected domains span registry operators, or if
// the candidate itself lives under the same operator as its affected
// domains (a rename target is always external to the repository that
// performed it).
func (d *Detector) violatesSingleRepo(zd zoneData, ns dnsname.Name) bool {
	operators := make(map[string]bool)
	for _, e := range zd.EdgesOf(ns) {
		if op := d.Dir.OperatorOf(e.Domain.TLD()); op != "" {
			operators[op] = true
		}
	}
	if len(operators) > 1 {
		return true
	}
	if nsOp := d.Dir.OperatorOf(ns.TLD()); nsOp != "" && operators[nsOp] {
		return true
	}
	return false
}

// matchOriginal implements §3.2.3. For each domain whose delegation to
// the candidate began on the candidate's first day, it looks at the
// nameservers that domain used through the previous day. If one of them
// satisfies the registered-domain substring criterion, the rename is
// attributed to the registrar WHOIS reports for the original nameserver's
// domain at that time, and mapped to that registrar's original-based
// idiom.
func (d *Detector) matchOriginal(zd zoneData, ns dnsname.Name, first dates.Day) (*idioms.Idiom, string, dnsname.Name, bool) {
	type match struct {
		rr   string
		prev dnsname.Name
	}
	var matches []match
	for _, e := range zd.EdgesOf(ns) {
		spans := zd.EdgeSpans(e.Domain, ns)
		if spans == nil || spans.First() != first {
			continue
		}
		for prevNS, prevSpans := range zd.NSHistory(e.Domain) {
			if prevNS == ns || !endsOn(prevSpans, first-1) {
				continue
			}
			if !idioms.MatchesOriginal(ns, prevNS) {
				continue
			}
			reg, ok := dnsname.RegisteredDomain(prevNS)
			if !ok {
				continue
			}
			rr := d.WHOIS.RegistrarOn(reg, first-1)
			if rr == "" {
				continue
			}
			matches = append(matches, match{rr, prevNS})
		}
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].rr != matches[j].rr {
			return matches[i].rr < matches[j].rr
		}
		return matches[i].prev < matches[j].prev
	})
	votes := make(map[string]int)
	originals := make(map[string]dnsname.Name)
	for _, m := range matches {
		votes[m.rr]++
		if _, have := originals[m.rr]; !have {
			originals[m.rr] = m.prev
		}
	}
	if len(votes) == 0 {
		return nil, "", "", false
	}
	// Majority registrar wins; ties break deterministically by name.
	var best string
	for rr := range votes {
		if best == "" || votes[rr] > votes[best] || (votes[rr] == votes[best] && rr < best) {
			best = rr
		}
	}
	idiom := OriginalIdiomFor(best, ns, originals[best])
	if idiom == nil {
		return nil, "", "", false
	}
	return idiom, best, originals[best], true
}

// endsOn reports whether any span in the set ends exactly on day.
func endsOn(s *interval.Set, day dates.Day) bool {
	for _, r := range s.Spans() {
		if r.Last == day {
			return true
		}
	}
	return false
}

// OriginalIdiomFor maps an attributed registrar to its original-based
// renaming idiom, distinguishing Enom's 123.BIZ era from its random-name
// era by shape. Unknown registrars yield nil: the methodology is
// conservative and only classifies confirmed idioms (§3.3). Exported so
// the incremental watch engine attributes renames identically.
func OriginalIdiomFor(registrarName string, ns, orig dnsname.Name) *idioms.Idiom {
	switch registrarName {
	case "Enom":
		ssld, _ := dnsname.SecondLevelLabel(ns)
		osld, _ := dnsname.SecondLevelLabel(orig)
		if ns.TLD() == "biz" && ssld == osld+"123" {
			return idioms.Lookup(idioms.Enom123)
		}
		return idioms.Lookup(idioms.EnomRandom)
	case "GoDaddy":
		// GoDaddy's original-based idiom carries the marker and is
		// classified earlier; reaching here means the shape is unknown.
		return idioms.Lookup(idioms.PleaseDropThisHost)
	case "DomainPeople":
		return idioms.Lookup(idioms.DomainPeopleRandom)
	case "Fabulous.com":
		return idioms.Lookup(idioms.FabulousRandom)
	case "Register.com":
		return idioms.Lookup(idioms.RegisterComRandom)
	default:
		return nil
	}
}

// emit records a classified sacrificial nameserver.
func (d *Detector) emit(zd zoneData, res *Result, ns dnsname.Name, first dates.Day, idiom *idioms.Idiom, registrarName string, orig dnsname.Name) {
	s := Sacrificial{
		NS:        ns,
		Created:   first,
		Idiom:     idiom.ID,
		Class:     idiom.Class,
		Registrar: registrarName,
		Original:  orig,
	}
	if reg, ok := dnsname.RegisteredDomain(ns); ok {
		s.RegDomain = reg
	}
	for _, e := range zd.EdgesOf(ns) {
		s.Domains = append(s.Domains, AffectedDomain{Name: e.Domain, Spans: zd.EdgeSpans(e.Domain, ns)})
	}
	sort.Slice(s.Domains, func(i, j int) bool { return s.Domains[i].Name < s.Domains[j].Name })
	if s.Class == idioms.Hijackable && s.RegDomain != "" {
		if zd.DomainRegisteredOn(s.RegDomain, first) {
			s.Collision = true
			s.HijackedOn = dates.None
		} else {
			s.HijackedOn = zd.DomainFirstSeenAfter(s.RegDomain, first)
		}
	} else {
		s.HijackedOn = dates.None
	}
	res.byNS[ns] = len(res.Sacrificial)
	res.Sacrificial = append(res.Sacrificial, s)
}
