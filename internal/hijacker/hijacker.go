// Package hijacker models the parties that register sacrificial
// nameserver domains to capture the traffic of domains delegating to
// them (paper §5-§6).
//
// The behavioural parameters encode what the paper measures rather than
// assumes: hijackers are SELECTIVE (they register a small fraction of
// sacrificial nameservers but capture a third of the exposed domains by
// preferring high-degree names, §5.1/§5.3), FAST (half the eventually
// hijacked domains are captured within days of exposure, §5.4, via short
// scan cadences), and ROI-SENSITIVE (registrations lapse after one or two
// years when the captured traffic is not worth renewal fees, §5.5).
package hijacker

import (
	"math"
	"math/rand"

	"repro/internal/dates"
	"repro/internal/dnsname"
	"repro/internal/epp"
)

// Opportunity is a registrable sacrificial nameserver domain as a scanner
// sees it: the domain, how many delegated domains it would capture, and
// when the exposure appeared.
type Opportunity struct {
	Domain  dnsname.Name // registrable domain of the sacrificial NS
	Degree  int          // distinct domains currently delegating to it
	Created dates.Day
}

// Actor is one hijacker group.
type Actor struct {
	// Name labels the group by its controlling nameserver domain, as the
	// paper attributes bulk hijackers (Table 4).
	Name string
	// InfraNS are the nameserver names the actor installs for domains it
	// registers; their registered domain is the attribution key.
	InfraNS []dnsname.Name
	// Registrar is the EPP account the actor registers through.
	Registrar epp.RegistrarID

	// ScanEvery is the actor's scan cadence in days: new opportunities
	// are evaluated at the first scan after they appear.
	ScanEvery int
	// NoticeAfter is the minimum age (days) an opportunity must reach
	// before the actor's scans consider it — zone-file collection,
	// triage, and registration all take time.
	NoticeAfter int
	// SweepEvery is the cadence of deep sweeps that re-evaluate old,
	// still-unregistered opportunities (the long tail of Figure 6).
	// Zero disables sweeps.
	SweepEvery int
	// SweepChance is the per-opportunity probability during a sweep.
	SweepChance float64

	// Aggressiveness scales registration probability (0..1].
	Aggressiveness float64
	// DegreeK is the degree at which desire reaches roughly a quarter of
	// Aggressiveness; see Wants.
	DegreeK float64
	// MinDegree discards opportunities below this degree outright.
	MinDegree int

	// RenewProb[i] is the probability of renewing a registration at the
	// end of year i+1. Beyond the slice the last value applies.
	RenewProb []float64

	seen map[dnsname.Name]bool
}

// ScansOn reports whether the actor runs its regular scan on day.
func (a *Actor) ScansOn(day dates.Day) bool {
	if a.ScanEvery <= 0 {
		return false
	}
	return int(day)%a.ScanEvery == a.phase()
}

// SweepsOn reports whether the actor runs a deep sweep on day.
func (a *Actor) SweepsOn(day dates.Day) bool {
	if a.SweepEvery <= 0 {
		return false
	}
	return int(day)%a.SweepEvery == a.phase()%a.SweepEvery
}

// phase staggers actors so they do not all scan on the same days.
func (a *Actor) phase() int {
	h := 0
	for _, c := range a.Name {
		h = h*31 + int(c)
	}
	if a.ScanEvery <= 0 {
		return 0
	}
	return ((h % a.ScanEvery) + a.ScanEvery) % a.ScanEvery
}

// Wants decides whether the actor registers the opportunity when first
// evaluating it. The probability grows with degree as
//
//	p = Aggressiveness * (d / (d + DegreeK))^2
//
// which stays negligible for single-domain names (the bulk of sacrificial
// nameservers) and saturates for the high-value names — reproducing the
// paper's 5%-of-nameservers / 32%-of-domains asymmetry.
func (a *Actor) Wants(op Opportunity, rng *rand.Rand) bool {
	if op.Degree < a.MinDegree {
		return false
	}
	d := float64(op.Degree)
	frac := d / (d + a.DegreeK)
	p := a.Aggressiveness * frac * frac
	return rng.Float64() < p
}

// MarkSeen records that the actor has evaluated the opportunity, so
// regular scans do not retry it (deep sweeps may).
func (a *Actor) MarkSeen(domain dnsname.Name) {
	if a.seen == nil {
		a.seen = make(map[dnsname.Name]bool)
	}
	a.seen[domain] = true
}

// Seen reports whether the actor has already evaluated the opportunity.
func (a *Actor) Seen(domain dnsname.Name) bool { return a.seen[domain] }

// Renews decides whether the actor renews a registration at the end of
// yearsHeld years.
func (a *Actor) Renews(yearsHeld int, rng *rand.Rand) bool {
	if len(a.RenewProb) == 0 {
		return false
	}
	i := yearsHeld - 1
	if i < 0 {
		i = 0
	}
	if i >= len(a.RenewProb) {
		i = len(a.RenewProb) - 1
	}
	return rng.Float64() < a.RenewProb[i]
}

// CombinedCatchProbability returns the probability that at least one of
// the actors registers an opportunity of the given degree on first
// evaluation. Used by calibration tests, not by the simulation itself.
func CombinedCatchProbability(actors []*Actor, degree int) float64 {
	miss := 1.0
	for _, a := range actors {
		if degree < a.MinDegree {
			continue
		}
		d := float64(degree)
		frac := d / (d + a.DegreeK)
		miss *= 1 - a.Aggressiveness*frac*frac
	}
	return 1 - miss
}

// DefaultActors returns the five bulk-hijacker groups of Table 4 with
// behaviour calibrated to the paper's aggregate findings. The relative
// capture volumes (mpower.nl > protectdelegation > yandex.net >
// phonesear.ch ~ dnspanel.com) emerge from cadence and aggressiveness.
func DefaultActors() []*Actor {
	return []*Actor{
		{
			Name:      "mpower.nl",
			InfraNS:   []dnsname.Name{"ns1.mpower.nl", "ns2.mpower.nl"},
			Registrar: "openprovider",
			ScanEvery: 2, NoticeAfter: 3, SweepEvery: 90, SweepChance: 0.008,
			Aggressiveness: 0.65, DegreeK: 10, MinDegree: 1,
			RenewProb: []float64{0.45, 0.22, 0.10},
		},
		{
			Name:      "protectdelegation",
			InfraNS:   []dnsname.Name{"a.protectdelegation.ca", "b.protectdelegation.eu", "c.protectdelegation.com"},
			Registrar: "tucows",
			ScanEvery: 4, NoticeAfter: 5, SweepEvery: 120, SweepChance: 0.006,
			Aggressiveness: 0.50, DegreeK: 12, MinDegree: 1,
			RenewProb: []float64{0.40, 0.20, 0.10},
		},
		{
			Name:      "yandex.net",
			InfraNS:   []dnsname.Name{"dns1.yandex.net", "dns2.yandex.net"},
			Registrar: "regru",
			ScanEvery: 7, NoticeAfter: 7, SweepEvery: 150, SweepChance: 0.008,
			Aggressiveness: 0.42, DegreeK: 14, MinDegree: 1,
			RenewProb: []float64{0.40, 0.20, 0.10},
		},
		{
			Name:      "phonesear.ch",
			InfraNS:   []dnsname.Name{"ns1.phonesear.ch", "ns2.phonesear.ch"},
			Registrar: "namesilo",
			ScanEvery: 14, NoticeAfter: 10, SweepEvery: 210, SweepChance: 0.008,
			Aggressiveness: 0.38, DegreeK: 17, MinDegree: 2,
			RenewProb: []float64{0.50, 0.25, 0.10},
		},
		{
			Name:      "dnspanel.com",
			InfraNS:   []dnsname.Name{"ns1.dnspanel.com", "ns2.dnspanel.com"},
			Registrar: "namesilo",
			ScanEvery: 21, NoticeAfter: 14, SweepEvery: 270, SweepChance: 0.006,
			Aggressiveness: 0.35, DegreeK: 20, MinDegree: 2,
			RenewProb: []float64{0.45, 0.20, 0.10},
		},
	}
}

// ExpectedValue estimates the hijack value (domain-days, §5.3) a one-year
// registration of an opportunity with the given degree yields, assuming
// each captured domain independently survives to the next day with
// probability dailySurvival. Used by ablation benches comparing selective
// and uniform strategies.
func ExpectedValue(degree int, dailySurvival float64) float64 {
	if dailySurvival >= 1 {
		return float64(degree) * 365
	}
	if dailySurvival <= 0 {
		return 0
	}
	s := dailySurvival
	return float64(degree) * s * (1 - math.Pow(s, 365)) / (1 - s)
}
