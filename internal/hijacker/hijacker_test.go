package hijacker

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dates"
)

func TestWantsMonotonicInDegree(t *testing.T) {
	a := &Actor{Aggressiveness: 0.8, DegreeK: 10, MinDegree: 1}
	// Estimate acceptance rates at increasing degrees; they must be
	// non-decreasing (within sampling noise handled by large N).
	rate := func(degree int) float64 {
		rng := rand.New(rand.NewSource(int64(degree)))
		hits := 0
		for i := 0; i < 20000; i++ {
			if a.Wants(Opportunity{Degree: degree}, rng) {
				hits++
			}
		}
		return float64(hits) / 20000
	}
	prev := -1.0
	for _, d := range []int{1, 3, 10, 30, 100} {
		r := rate(d)
		if r < prev-0.02 {
			t.Fatalf("acceptance rate decreased at degree %d: %f < %f", d, r, prev)
		}
		prev = r
	}
	if prev < 0.5 {
		t.Errorf("high-degree acceptance too low: %f", prev)
	}
	if low := rate(1); low > 0.05 {
		t.Errorf("degree-1 acceptance too high: %f", low)
	}
}

func TestWantsMinDegree(t *testing.T) {
	a := &Actor{Aggressiveness: 1, DegreeK: 1, MinDegree: 3}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if a.Wants(Opportunity{Degree: 2}, rng) {
			t.Fatal("below MinDegree must never register")
		}
	}
}

func TestCombinedCatchProbability(t *testing.T) {
	actors := DefaultActors()
	low := CombinedCatchProbability(actors, 1)
	mid := CombinedCatchProbability(actors, 10)
	high := CombinedCatchProbability(actors, 100)
	if !(low < mid && mid < high) {
		t.Fatalf("not monotone: %f %f %f", low, mid, high)
	}
	// Calibration envelope for the paper's 5%-NS / 32%-domain split:
	// single-domain names nearly never registered, large ones nearly
	// always.
	if low > 0.06 {
		t.Errorf("degree-1 combined catch %f too high", low)
	}
	if high < 0.5 {
		t.Errorf("degree-100 combined catch %f too low", high)
	}
	if p := CombinedCatchProbability(actors, 0); p != 0 {
		t.Errorf("degree-0 catch = %f", p)
	}
}

func TestRenews(t *testing.T) {
	a := &Actor{RenewProb: []float64{1, 0}}
	rng := rand.New(rand.NewSource(2))
	if !a.Renews(1, rng) {
		t.Error("year-1 renewal with p=1 failed")
	}
	if a.Renews(2, rng) || a.Renews(5, rng) {
		t.Error("year-2+ renewal with p=0 succeeded")
	}
	empty := &Actor{}
	if empty.Renews(1, rng) {
		t.Error("actor with no renewal profile should never renew")
	}
	if a.Renews(0, rng) != true { // clamps below
		t.Error("yearsHeld clamp broken")
	}
}

func TestScanAndSweepCadence(t *testing.T) {
	a := &Actor{Name: "x", ScanEvery: 5, SweepEvery: 20}
	scans, sweeps := 0, 0
	for d := dates.Day(0); d < 100; d++ {
		if a.ScansOn(d) {
			scans++
		}
		if a.SweepsOn(d) {
			sweeps++
		}
	}
	if scans != 20 {
		t.Errorf("scans in 100 days = %d, want 20", scans)
	}
	if sweeps != 5 {
		t.Errorf("sweeps in 100 days = %d, want 5", sweeps)
	}
	none := &Actor{Name: "y"}
	if none.ScansOn(10) || none.SweepsOn(10) {
		t.Error("zero cadence should never fire")
	}
}

func TestActorsStaggered(t *testing.T) {
	// Actors with the same cadence but different names should not all
	// scan on the same days.
	a := &Actor{Name: "alpha", ScanEvery: 7}
	b := &Actor{Name: "bravo-different", ScanEvery: 7}
	same := true
	for d := dates.Day(0); d < 7; d++ {
		if a.ScansOn(d) != b.ScansOn(d) {
			same = false
		}
	}
	if same {
		t.Log("actors happen to share phase; acceptable but worth knowing")
	}
}

func TestSeenTracking(t *testing.T) {
	a := &Actor{}
	if a.Seen("x.biz") {
		t.Error("fresh actor has seen nothing")
	}
	a.MarkSeen("x.biz")
	if !a.Seen("x.biz") || a.Seen("y.biz") {
		t.Error("seen tracking broken")
	}
}

func TestDefaultActorsWellFormed(t *testing.T) {
	actors := DefaultActors()
	if len(actors) != 5 {
		t.Fatalf("actor count = %d", len(actors))
	}
	names := map[string]bool{}
	for _, a := range actors {
		if names[a.Name] {
			t.Errorf("duplicate actor %s", a.Name)
		}
		names[a.Name] = true
		if len(a.InfraNS) == 0 || a.Registrar == "" || a.ScanEvery <= 0 {
			t.Errorf("%s: incomplete configuration", a.Name)
		}
		if a.Aggressiveness <= 0 || a.Aggressiveness > 1 {
			t.Errorf("%s: aggressiveness %f out of range", a.Name, a.Aggressiveness)
		}
	}
	if !names["mpower.nl"] || !names["phonesear.ch"] {
		t.Error("Table 4 actors missing")
	}
}

func TestExpectedValue(t *testing.T) {
	if ExpectedValue(10, 1) != 3650 {
		t.Errorf("full survival = %f", ExpectedValue(10, 1))
	}
	if ExpectedValue(10, 0) != 0 {
		t.Errorf("zero survival = %f", ExpectedValue(10, 0))
	}
	v := ExpectedValue(10, 0.99)
	if v <= 0 || v >= 3650 {
		t.Errorf("partial survival = %f out of range", v)
	}
	// Monotone in degree.
	f := func(d uint8) bool {
		return ExpectedValue(int(d)+1, 0.99) >= ExpectedValue(int(d), 0.99)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Roughly linear in degree.
	if r := ExpectedValue(20, 0.99) / ExpectedValue(10, 0.99); math.Abs(r-2) > 1e-9 {
		t.Errorf("linearity ratio = %f", r)
	}
}
