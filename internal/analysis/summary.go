package analysis

import (
	"encoding/json"
	"io"

	"repro/internal/dates"
)

// Summary bundles every artifact of the evaluation in one
// JSON-marshalable structure, for machine consumption (dashboards,
// notebooks, regression tracking).
type Summary struct {
	Window dates.Range `json:"window"`

	Funnel FunnelSummary `json:"funnel"`

	Table1 *IdiomTable   `json:"table1_non_hijackable"`
	Table2 *IdiomTable   `json:"table2_hijackable"`
	Table3 *Table3       `json:"table3_totals"`
	Table4 []HijackerRow `json:"table4_hijackers"`
	Table5 *Table5       `json:"table5_remediation,omitempty"`
	Table6 *IdiomTable   `json:"table6_protected"`

	RemediationByRegistrar []AttributionRow `json:"remediation_by_registrar,omitempty"`

	Figure3 *MonthlySeries `json:"figure3_new_hijackable_per_month"`
	Figure4 *MonthlySeries `json:"figure4_new_hijacked_per_month"`
	Figure5 []ScatterPoint `json:"figure5_value_scatter"`

	Figure6NameserverDays []int `json:"figure6_ns_days_to_exploit"`
	Figure6DomainDays     []int `json:"figure6_domain_days_to_exploit"`

	Figure7NeverHijackedDays []int `json:"figure7_never_hijacked_exposure_days"`
	Figure7HijackedExposure  []int `json:"figure7_hijacked_exposure_days"`
	Figure7HijackedDays      []int `json:"figure7_hijacked_days"`

	IdiomTimeline []TimelineRow `json:"idiom_timeline"`
}

// FunnelSummary mirrors detect.Funnel with JSON names.
type FunnelSummary struct {
	TotalNameservers     int `json:"total_nameservers"`
	Candidates           int `json:"candidates"`
	TestNameservers      int `json:"test_nameservers"`
	SingleRepoViolations int `json:"single_repo_violations"`
	Unclassified         int `json:"unclassified"`
	Sacrificial          int `json:"sacrificial"`
}

// Summarize computes every artifact. notification and followup
// parameterize Table 5 (pass zero days to omit it).
func (a *Analysis) Summarize(notification, followup dates.Day) *Summary {
	f := a.Funnel()
	s := &Summary{
		Window: a.window,
		Funnel: FunnelSummary{
			TotalNameservers:     f.TotalNameservers,
			Candidates:           f.Candidates,
			TestNameservers:      f.TestNameservers,
			SingleRepoViolations: f.SingleRepoViolations,
			Unclassified:         f.Unclassified,
			Sacrificial:          f.Sacrificial,
		},
		Table1:        a.Table1(),
		Table2:        a.Table2(),
		Table3:        a.Table3(),
		Table4:        a.Table4(5),
		Table6:        a.Table6(),
		Figure3:       a.Figure3(),
		Figure4:       a.Figure4(),
		Figure5:       a.Figure5(),
		IdiomTimeline: a.IdiomTimeline(),
	}
	nsCDF, domCDF := a.Figure6()
	s.Figure6NameserverDays = nsCDF.Samples()
	s.Figure6DomainDays = domCDF.Samples()
	never, exposure, hijacked := a.Figure7()
	s.Figure7NeverHijackedDays = never.Samples()
	s.Figure7HijackedExposure = exposure.Samples()
	s.Figure7HijackedDays = hijacked.Samples()
	if notification != 0 && notification.Valid() {
		s.Table5 = a.Table5(notification, followup)
		s.RemediationByRegistrar = a.RemediationAttribution(notification, followup)
	}
	return s
}

// WriteJSON emits the summary as indented JSON.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
