package analysis

import (
	"sort"

	"repro/internal/dates"
	"repro/internal/detect"
	"repro/internal/dnsname"
	"repro/internal/idioms"
	"repro/internal/resolve"
)

// PartialStats reports the §5.6 population: domains that, on the given
// day, delegate to at least one hijackable sacrificial nameserver AND at
// least one working nameserver — owners with functioning nameservice who
// likely have no idea they are exposed.
type PartialStats struct {
	Date dates.Day
	// FullyExposed domains have only sacrificial nameservers left.
	FullyExposed int
	// PartiallyExposed domains keep at least one resolvable nameserver.
	PartiallyExposed int
	// PartiallyHijacked counts partially exposed domains whose
	// sacrificial nameserver is registered by an outside party.
	PartiallyHijacked int
}

// Partial computes the partially-exposed population on day.
func (a *Analysis) Partial(day dates.Day) PartialStats {
	stats := PartialStats{Date: day}
	static := resolve.NewStatic(a.db)
	type state struct {
		partial  bool
		hijacked bool
	}
	exposed := make(map[dnsname.Name]*state)
	a.each(func(s *detect.Sacrificial) {
		if !s.Hijackable() || s.Created > day {
			return
		}
		hijackedNow := s.Hijacked() && s.HijackedOn <= day && a.db.DomainRegisteredOn(s.RegDomain, day)
		for _, d := range s.Domains {
			if !d.Spans.Contains(day) {
				continue
			}
			st := exposed[d.Name]
			if st == nil {
				st = &state{}
				exposed[d.Name] = st
				// Partial if any OTHER nameserver of the domain resolves.
				for _, ns := range a.db.NSOn(d.Name, day) {
					if a.res.Lookup(ns) != nil {
						continue
					}
					if static.ResolvableOn(ns, day) {
						st.partial = true
						break
					}
				}
			}
			if hijackedNow {
				st.hijacked = true
			}
		}
	})
	for _, st := range exposed {
		if st.partial {
			stats.PartiallyExposed++
			if st.hijacked {
				stats.PartiallyHijacked++
			}
		} else {
			stats.FullyExposed++
		}
	}
	return stats
}

// AccidentReport reconstructs the §4 Namecheap timeline from zone data,
// given the accident nameserver names (external knowledge, as in the
// paper).
type AccidentReport struct {
	// Day is the accident date (first appearance of the accident names).
	Day dates.Day
	// PeakDomains is the number of domains delegated to accident names
	// on the accident day.
	PeakDomains int
	// AfterThreeDays counts domains still delegated three days later.
	AfterThreeDays int
	// Residual counts domains still delegated at the end of observation.
	Residual int
}

// Accident computes the accident timeline. accidentNS lists the renamed
// host names; endOfData is the last observed day.
func (a *Analysis) Accident(accidentNS []dnsname.Name, endOfData dates.Day) *AccidentReport {
	rep := &AccidentReport{Day: dates.None}
	for _, ns := range accidentNS {
		if f := a.db.NSFirstSeen(ns); f != dates.None && (rep.Day == dates.None || f < rep.Day) {
			rep.Day = f
		}
	}
	if rep.Day == dates.None {
		return rep
	}
	peak := make(map[dnsname.Name]bool)
	after := make(map[dnsname.Name]bool)
	residual := make(map[dnsname.Name]bool)
	for _, ns := range accidentNS {
		for _, e := range a.db.EdgesOf(ns) {
			spans := a.db.EdgeSpans(e.Domain, ns)
			if spans.Contains(rep.Day) {
				peak[e.Domain] = true
			}
			if spans.Contains(rep.Day.Add(3)) {
				after[e.Domain] = true
			}
			if spans.Contains(endOfData) {
				residual[e.Domain] = true
			}
		}
	}
	rep.PeakDomains = len(peak)
	rep.AfterThreeDays = len(after)
	rep.Residual = len(residual)
	return rep
}

// PopularExposure counts how many of the popular domains (the Alexa
// Top-1M stand-in) were ever hijackable inside the window (§5.6's ~500
// of the Top 1M).
func (a *Analysis) PopularExposure(popular map[dnsname.Name]bool) int {
	seen := make(map[dnsname.Name]bool)
	a.each(func(s *detect.Sacrificial) {
		if !s.Hijackable() || !a.inWindow(s) {
			return
		}
		for _, d := range s.Domains {
			if popular[d.Name] {
				seen[d.Name] = true
			}
		}
	})
	return len(seen)
}

// Funnel re-exports the detection funnel for reporting alongside the
// analyses.
func (a *Analysis) Funnel() detect.Funnel { return a.res.Funnel }

// TimelineRow summarizes one idiom's era: when its sacrificial names
// first and last appeared, and how many were created.
type TimelineRow struct {
	Idiom       idioms.ID
	Registrar   string
	Class       idioms.Class
	FirstSeen   dates.Day
	LastSeen    dates.Day
	Nameservers int
}

// IdiomTimeline reconstructs the idiom eras the paper narrates in §4
// (GoDaddy's PLEASEDROPTHISHOST giving way to DROPTHISHOST in 2015,
// Enom's 123.BIZ to random names in 2012, the protected idioms appearing
// only after the notification campaign) purely from detection output.
func (a *Analysis) IdiomTimeline() []TimelineRow {
	byIdiom := make(map[idioms.ID]*TimelineRow)
	a.each(func(s *detect.Sacrificial) {
		row := byIdiom[s.Idiom]
		if row == nil {
			id := idioms.Lookup(s.Idiom)
			row = &TimelineRow{
				Idiom: s.Idiom, FirstSeen: s.Created, LastSeen: s.Created,
			}
			if id != nil {
				row.Registrar, row.Class = id.Registrar, id.Class
			}
			byIdiom[s.Idiom] = row
		}
		if s.Created < row.FirstSeen {
			row.FirstSeen = s.Created
		}
		if s.Created > row.LastSeen {
			row.LastSeen = s.Created
		}
		row.Nameservers++
	})
	rows := make([]TimelineRow, 0, len(byIdiom))
	for _, r := range byIdiom {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].FirstSeen != rows[j].FirstSeen {
			return rows[i].FirstSeen < rows[j].FirstSeen
		}
		return rows[i].Idiom < rows[j].Idiom
	})
	return rows
}
