// Package analysis computes every table and figure of the paper's
// evaluation from a detection result and the longitudinal zone database:
//
//	Table 1  non-hijackable renaming idioms
//	Table 2  hijackable renaming idioms
//	Table 3  hijackable vs hijacked totals
//	Table 4  top bulk hijackers by controlling nameserver
//	Table 5  remediation deltas vs the organic baseline
//	Table 6  protected idioms adopted after outreach
//	Fig. 3   new hijackable domains per month
//	Fig. 4   new hijacked domains per month
//	Fig. 5   hijack value vs number of delegated domains
//	Fig. 6   time-to-exploit CDFs (nameservers and domains)
//	Fig. 7   hijackable/hijacked duration CDFs
//
// plus the §3.2 candidate funnel, the §4 accident timeline, and the §5.6
// partially-hijacked population.
package analysis

import (
	"sort"

	"repro/internal/dates"
	"repro/internal/detect"
	"repro/internal/dnsname"
	"repro/internal/whois"
	"repro/internal/zonedb"
)

// Analysis evaluates one detection result.
type Analysis struct {
	res *detect.Result
	db  *zonedb.DB

	// exclude lists nameservers to drop from all analyses — the paper
	// excludes the Namecheap-accident names on the strength of direct
	// communication with the registrar, an input external to detection.
	exclude map[dnsname.Name]bool

	// window bounds the longitudinal analyses (the paper's Apr 2011 -
	// Sep 2020).
	window dates.Range

	// who is the registrar-of-record history; optional, required only by
	// the attribution analyses (WithWHOIS).
	who *whois.History
}

// WithWHOIS attaches registrar-of-record history, enabling attribution
// analyses such as RemediationAttribution. Returns a for chaining.
func (a *Analysis) WithWHOIS(h *whois.History) *Analysis {
	a.who = h
	return a
}

// New creates an Analysis over res and db with the given observation
// window. excludeNS may be nil.
func New(res *detect.Result, db *zonedb.DB, window dates.Range, excludeNS []dnsname.Name) *Analysis {
	ex := make(map[dnsname.Name]bool, len(excludeNS))
	for _, ns := range excludeNS {
		ex[ns] = true
	}
	return &Analysis{res: res, db: db, exclude: ex, window: window}
}

// Window returns the analysis window.
func (a *Analysis) Window() dates.Range { return a.window }

// each iterates the included sacrificial nameservers.
func (a *Analysis) each(fn func(s *detect.Sacrificial)) {
	for i := range a.res.Sacrificial {
		s := &a.res.Sacrificial[i]
		if a.exclude[s.NS] {
			continue
		}
		fn(s)
	}
}

// inWindow reports whether the nameserver was created inside the
// analysis window.
func (a *Analysis) inWindow(s *detect.Sacrificial) bool {
	return a.window.Contains(s.Created)
}

// CDF is an empirical distribution over integer samples (days).
type CDF struct {
	samples []int
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []int) *CDF {
	s := make([]int, len(samples))
	copy(s, samples)
	sort.Ints(s)
	return &CDF{samples: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.samples) }

// At returns P(X <= x).
func (c *CDF) At(x int) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	i := sort.SearchInts(c.samples, x+1)
	return float64(i) / float64(len(c.samples))
}

// Quantile returns the smallest sample s with At(s) >= p.
func (c *CDF) Quantile(p float64) int {
	if len(c.samples) == 0 {
		return 0
	}
	i := int(p*float64(len(c.samples))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.samples) {
		i = len(c.samples) - 1
	}
	return c.samples[i]
}

// Samples returns the sorted samples (owned by the CDF).
func (c *CDF) Samples() []int { return c.samples }

// Points renders the CDF as (x, fraction) pairs, one per distinct value,
// suitable for plotting or CSV emission.
func (c *CDF) Points() [][2]float64 {
	var out [][2]float64
	n := len(c.samples)
	for i := 0; i < n; {
		j := i
		for j < n && c.samples[j] == c.samples[i] {
			j++
		}
		out = append(out, [2]float64{float64(c.samples[i]), float64(j) / float64(n)})
		i = j
	}
	return out
}

// MonthlySeries is a per-month count series (Figures 3 and 4).
type MonthlySeries struct {
	Months []dates.Month
	Counts []int
}

// Total sums the series.
func (m *MonthlySeries) Total() int {
	t := 0
	for _, c := range m.Counts {
		t += c
	}
	return t
}

// TrendSlope fits a least-squares line to the counts and returns its
// slope in domains/month — negative when the series trends downward
// (Figure 3's finding).
func (m *MonthlySeries) TrendSlope() float64 {
	n := float64(len(m.Counts))
	if n < 2 {
		return 0
	}
	var sumX, sumY, sumXY, sumXX float64
	for i, c := range m.Counts {
		x, y := float64(i), float64(c)
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	denom := n*sumXX - sumX*sumX
	if denom == 0 {
		return 0
	}
	return (n*sumXY - sumX*sumY) / denom
}

// newMonthlySeries allocates a zeroed series over the window.
func (a *Analysis) newMonthlySeries() *MonthlySeries {
	months := dates.MonthsBetween(a.window.First.Month(), a.window.Last.Month())
	return &MonthlySeries{Months: months, Counts: make([]int, len(months))}
}

// bump increments the month bucket containing day, ignoring days outside
// the window.
func (m *MonthlySeries) bump(day dates.Day) {
	if len(m.Months) == 0 {
		return
	}
	idx := int(day.Month() - m.Months[0])
	if idx >= 0 && idx < len(m.Counts) {
		m.Counts[idx]++
	}
}
