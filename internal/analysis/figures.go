package analysis

import (
	"repro/internal/dates"
	"repro/internal/detect"
	"repro/internal/dnsname"
	"repro/internal/interval"
)

// Figure3 counts newly hijackable domains per month: each domain is
// counted once, in the month its delegation to a hijackable sacrificial
// nameserver first appeared.
func (a *Analysis) Figure3() *MonthlySeries {
	series := a.newMonthlySeries()
	firstExposure := make(map[dnsname.Name]dates.Day)
	a.each(func(s *detect.Sacrificial) {
		if !s.Hijackable() || !a.inWindow(s) {
			return
		}
		for _, d := range s.Domains {
			f := d.Spans.First()
			if f == dates.None {
				continue
			}
			if prev, ok := firstExposure[d.Name]; !ok || f < prev {
				firstExposure[d.Name] = f
			}
		}
	})
	for _, day := range firstExposure {
		series.bump(day)
	}
	return series
}

// Figure4 counts newly hijacked domains per month: each domain is counted
// once, in the month it first delegated to a sacrificial nameserver whose
// domain the hijacker had registered.
func (a *Analysis) Figure4() *MonthlySeries {
	series := a.newMonthlySeries()
	firstHijack := make(map[dnsname.Name]dates.Day)
	a.each(func(s *detect.Sacrificial) {
		if !s.Hijacked() || !a.inWindow(s) || !a.window.Contains(s.HijackedOn) {
			return
		}
		for _, d := range s.Domains {
			// The domain is hijacked from the later of the registration
			// day and the start of its own exposure to this nameserver.
			from := d.Spans.NextOnOrAfter(s.HijackedOn)
			if from == dates.None {
				continue
			}
			if prev, ok := firstHijack[d.Name]; !ok || from < prev {
				firstHijack[d.Name] = from
			}
		}
	})
	for _, day := range firstHijack {
		series.bump(day)
	}
	return series
}

// ScatterPoint is one Figure 5 point: a hijackable sacrificial
// nameserver's hijack value and delegated-domain count.
type ScatterPoint struct {
	NS       dnsname.Name
	Value    int // domain-days (log x-axis in the paper)
	NDomains int // capped at 1000 in the paper's plot
	Hijacked bool
}

// Figure5 returns the value-vs-degree scatter of §5.3.
func (a *Analysis) Figure5() []ScatterPoint {
	var pts []ScatterPoint
	a.each(func(s *detect.Sacrificial) {
		if !s.Hijackable() || !a.inWindow(s) {
			return
		}
		n := s.NumDomains()
		if n > 1000 {
			n = 1000
		}
		pts = append(pts, ScatterPoint{NS: s.NS, Value: s.Value(), NDomains: n, Hijacked: s.Hijacked()})
	})
	return pts
}

// Figure6 returns the time-to-exploit CDFs of §5.4: for nameservers, days
// from creation to registration; for (eventually hijacked) domains, days
// from their own exposure to the registration.
func (a *Analysis) Figure6() (nsCDF, domainCDF *CDF) {
	var nsDays, domDays []int
	a.each(func(s *detect.Sacrificial) {
		if !s.Hijacked() || !a.inWindow(s) {
			return
		}
		nsDays = append(nsDays, s.HijackedOn.Sub(s.Created))
		for _, d := range s.Domains {
			start := d.Spans.First()
			if start == dates.None || start > s.HijackedOn {
				continue // exposed only after the hijack began
			}
			if d.Spans.NextOnOrAfter(s.HijackedOn) == dates.None {
				continue // fixed before the hijack; never captured
			}
			domDays = append(domDays, s.HijackedOn.Sub(start))
		}
	})
	return NewCDF(nsDays), NewCDF(domDays)
}

// Figure7 returns the duration CDFs of §5.5: days hijackable for
// never-hijacked domains, days hijackable for hijacked domains, and days
// actually hijacked.
func (a *Analysis) Figure7() (neverHijackedDays, hijackedExposureDays, hijackedDays *CDF) {
	type acc struct {
		exposure interval.Set
		hijacked interval.Set
		wasHit   bool
	}
	perDomain := make(map[dnsname.Name]*acc)
	a.each(func(s *detect.Sacrificial) {
		if !s.Hijackable() || !a.inWindow(s) {
			return
		}
		regSpans := a.db.DomainSpans(s.RegDomain)
		for _, d := range s.Domains {
			g := perDomain[d.Name]
			if g == nil {
				g = &acc{}
				perDomain[d.Name] = g
			}
			merged := g.exposure.Union(d.Spans)
			g.exposure = merged
			if s.Hijacked() && regSpans != nil {
				hit := d.Spans.Intersect(regSpans)
				// Only the registration beginning at the hijack counts;
				// clip to days at or after it.
				hit = hit.Clip(dates.NewRange(s.HijackedOn, a.window.Last))
				if !hit.Empty() {
					h := g.hijacked.Union(&hit)
					g.hijacked = h
					g.wasHit = true
				}
			}
		}
	})
	var never, exposure, hijacked []int
	for _, g := range perDomain {
		if g.wasHit {
			exposure = append(exposure, g.exposure.TotalDays())
			hijacked = append(hijacked, g.hijacked.TotalDays())
		} else {
			never = append(never, g.exposure.TotalDays())
		}
	}
	return NewCDF(never), NewCDF(exposure), NewCDF(hijacked)
}
