package analysis

import (
	"repro/internal/dates"
	"repro/internal/detect"
	"repro/internal/dnsname"
)

// ExposureSnapshot counts the live exposure on one day: sacrificial
// nameservers that still have delegated domains, split into vulnerable
// (domain registrable) and hijacked (domain registered by an outside
// party).
type ExposureSnapshot struct {
	Date              dates.Day
	VulnerableNS      int
	HijackedNS        int
	VulnerableDomains int
	HijackedDomains   int
}

// SnapshotOn computes the exposure as of day. A sacrificial nameserver
// "disappears" when it has no delegated domains left (§7.1).
func (a *Analysis) SnapshotOn(day dates.Day) ExposureSnapshot {
	snap := ExposureSnapshot{Date: day}
	vulnDomains := make(map[dnsname.Name]bool)
	hijDomains := make(map[dnsname.Name]bool)
	a.each(func(s *detect.Sacrificial) {
		if !s.Hijackable() || s.Created > day {
			return
		}
		live := 0
		for _, d := range s.Domains {
			if d.Spans.Contains(day) {
				live++
			}
		}
		if live == 0 {
			return
		}
		hijackedNow := s.Hijacked() && s.HijackedOn <= day && a.db.DomainRegisteredOn(s.RegDomain, day)
		if hijackedNow {
			snap.HijackedNS++
		} else {
			snap.VulnerableNS++
		}
		for _, d := range s.Domains {
			if !d.Spans.Contains(day) {
				continue
			}
			if hijackedNow {
				hijDomains[d.Name] = true
			} else {
				vulnDomains[d.Name] = true
			}
		}
	})
	snap.VulnerableDomains = len(vulnDomains)
	snap.HijackedDomains = len(hijDomains)
	return snap
}

// Table5 compares the exposure before and after the notification
// campaign, with the equivalent period a year earlier as the organic
// baseline (§7.1).
type Table5 struct {
	Before ExposureSnapshot // notification start (Sep 2020)
	After  ExposureSnapshot // follow-up (Feb 2021)
	// BaselineBefore/After cover Sep 2019 -> Feb 2020.
	BaselineBefore ExposureSnapshot
	BaselineAfter  ExposureSnapshot
	// Remediated is the gross disappearance across the notification
	// period; Organic is the same measure a year earlier.
	Remediated Disappearance
	Organic    Disappearance
}

// DeltaNS returns the post-notification change in vulnerable nameservers
// (negative = remediated).
func (t *Table5) DeltaNS() int { return t.After.VulnerableNS - t.Before.VulnerableNS }

// DeltaDomains returns the post-notification change in vulnerable domains.
func (t *Table5) DeltaDomains() int {
	return t.After.VulnerableDomains - t.Before.VulnerableDomains
}

// BaselineDeltaNS returns the organic year-earlier change.
func (t *Table5) BaselineDeltaNS() int {
	return t.BaselineAfter.VulnerableNS - t.BaselineBefore.VulnerableNS
}

// BaselineDeltaDomains returns the organic year-earlier domain change.
func (t *Table5) BaselineDeltaDomains() int {
	return t.BaselineAfter.VulnerableDomains - t.BaselineBefore.VulnerableDomains
}

// Disappearance counts gross remediation between two days: vulnerable
// nameservers (and their domains) present at the first day that are gone
// by the second — the measure the paper uses for the organic baseline
// ("we saw the disappearance of 4K sacrificial nameservers and 11K
// affected domains").
type Disappearance struct {
	From, To dates.Day
	NS       int
	Domains  int
}

// DisappearedBetween computes gross disappearance of vulnerable exposure
// between from and to.
func (a *Analysis) DisappearedBetween(from, to dates.Day) Disappearance {
	d := Disappearance{From: from, To: to}
	domainsGone := make(map[dnsname.Name]bool)
	domainsStill := make(map[dnsname.Name]bool)
	a.each(func(s *detect.Sacrificial) {
		if !s.Hijackable() || s.Created > from {
			return
		}
		if s.Hijacked() && s.HijackedOn <= from && a.db.DomainRegisteredOn(s.RegDomain, from) {
			return // hijacked, not vulnerable, at the start of the period
		}
		liveFrom, liveTo := 0, 0
		for _, dm := range s.Domains {
			if dm.Spans.Contains(from) {
				liveFrom++
				if dm.Spans.Contains(to) {
					liveTo++
					domainsStill[dm.Name] = true
				} else {
					domainsGone[dm.Name] = true
				}
			}
		}
		if liveFrom > 0 && liveTo == 0 {
			d.NS++
		}
	})
	for name := range domainsGone {
		if !domainsStill[name] {
			d.Domains++
		}
	}
	return d
}

// AttributionRow credits remediated domains to the registrar sponsoring
// them at notification time.
type AttributionRow struct {
	Registrar string
	Domains   int
}

// RemediationAttribution breaks the notification-period disappearance
// down by sponsoring registrar (§7.1: "nearly 60% of the domains
// remediated ... were a result of such actions from GoDaddy"). Requires
// WithWHOIS; returns nil otherwise.
func (a *Analysis) RemediationAttribution(notification, followup dates.Day) []AttributionRow {
	if a.who == nil {
		return nil
	}
	counts := make(map[string]int)
	seen := make(map[dnsname.Name]bool)
	a.each(func(s *detect.Sacrificial) {
		if !s.Hijackable() || s.Created > notification {
			return
		}
		for _, dm := range s.Domains {
			if seen[dm.Name] {
				continue
			}
			if dm.Spans.Contains(notification) && !dm.Spans.Contains(followup) {
				seen[dm.Name] = true
				rr := a.who.RegistrarOn(dm.Name, notification)
				if rr == "" {
					rr = "(unknown)"
				}
				counts[rr]++
			}
		}
	})
	rows := make([]AttributionRow, 0, len(counts))
	for rr, n := range counts {
		rows = append(rows, AttributionRow{Registrar: rr, Domains: n})
	}
	sortAttribution(rows)
	return rows
}

func sortAttribution(rows []AttributionRow) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0; j-- {
			a, b := rows[j-1], rows[j]
			if b.Domains > a.Domains || (b.Domains == a.Domains && b.Registrar < a.Registrar) {
				rows[j-1], rows[j] = b, a
			} else {
				break
			}
		}
	}
}

// Table5 computes the remediation comparison for the given notification
// and follow-up dates.
func (a *Analysis) Table5(notification, followup dates.Day) *Table5 {
	yearBackN := notification.AddYears(-1)
	yearBackF := followup.AddYears(-1)
	return &Table5{
		Before:         a.SnapshotOn(notification),
		After:          a.SnapshotOn(followup),
		BaselineBefore: a.SnapshotOn(yearBackN),
		BaselineAfter:  a.SnapshotOn(yearBackF),
		Remediated:     a.DisappearedBetween(notification, followup),
		Organic:        a.DisappearedBetween(yearBackN, yearBackF),
	}
}
