package analysis

import (
	"sort"

	"repro/internal/dates"
	"repro/internal/detect"
	"repro/internal/dnsname"
	"repro/internal/idioms"
)

// IdiomRow is one row of Table 1 or Table 2.
type IdiomRow struct {
	Idiom           idioms.ID
	Registrar       string
	Nameservers     int
	AffectedDomains int
	// Example shows one generated renaming for hijackable idioms
	// (Table 2's last column).
	Example string
}

// IdiomTable is Table 1 (non-hijackable) or Table 2 (hijackable).
type IdiomTable struct {
	Rows []IdiomRow
	// TotalNameservers and TotalDomains deduplicate across rows: a
	// domain affected by two idioms counts once in the total.
	TotalNameservers int
	TotalDomains     int
}

// idiomTable aggregates sacrificial nameservers by idiom for one class.
func (a *Analysis) idiomTable(class idioms.Class) *IdiomTable {
	type agg struct {
		ns      int
		domains map[dnsname.Name]bool
		example string
	}
	perIdiom := make(map[idioms.ID]*agg)
	allDomains := make(map[dnsname.Name]bool)
	total := 0
	a.each(func(s *detect.Sacrificial) {
		if s.Class != class || !a.inWindow(s) {
			return
		}
		g := perIdiom[s.Idiom]
		if g == nil {
			g = &agg{domains: make(map[dnsname.Name]bool)}
			perIdiom[s.Idiom] = g
		}
		g.ns++
		total++
		if g.example == "" {
			g.example = string(s.NS)
		}
		for _, d := range s.Domains {
			g.domains[d.Name] = true
			allDomains[d.Name] = true
		}
	})
	t := &IdiomTable{TotalNameservers: total, TotalDomains: len(allDomains)}
	for _, id := range idioms.ByClass(class) {
		g := perIdiom[id.ID]
		if g == nil {
			continue
		}
		t.Rows = append(t.Rows, IdiomRow{
			Idiom:           id.ID,
			Registrar:       id.Registrar,
			Nameservers:     g.ns,
			AffectedDomains: len(g.domains),
			Example:         g.example,
		})
	}
	return t
}

// Table1 reports the non-hijackable sink-domain idioms.
func (a *Analysis) Table1() *IdiomTable { return a.idiomTable(idioms.NonHijackable) }

// Table2 reports the hijackable random-name idioms.
func (a *Analysis) Table2() *IdiomTable { return a.idiomTable(idioms.Hijackable) }

// Table6 reports the protected idioms adopted after the notification
// campaign. Unlike Tables 1-2 it covers the full data range (the paper
// reports it "as of September 2021").
func (a *Analysis) Table6() *IdiomTable {
	saved := a.window
	a.window = dates.NewRange(saved.First, saved.Last.Add(400))
	t := a.idiomTable(idioms.Protected)
	a.window = saved
	return t
}

// Table3Row summarizes hijackable vs hijacked counts.
type Table3 struct {
	HijackableNS      int
	HijackedNS        int
	HijackableDomains int
	HijackedDomains   int
}

// NSFraction returns the hijacked share of hijackable nameservers.
func (t *Table3) NSFraction() float64 {
	if t.HijackableNS == 0 {
		return 0
	}
	return float64(t.HijackedNS) / float64(t.HijackableNS)
}

// DomainFraction returns the hijacked share of hijackable domains.
func (t *Table3) DomainFraction() float64 {
	if t.HijackableDomains == 0 {
		return 0
	}
	return float64(t.HijackedDomains) / float64(t.HijackableDomains)
}

// Table3 computes the hijacking summary (§5.1): a domain is hijacked if
// it delegated to a hijacked sacrificial nameserver while the
// nameserver's domain was registered to the hijacker.
func (a *Analysis) Table3() *Table3 {
	t := &Table3{}
	hijackable := make(map[dnsname.Name]bool)
	hijacked := make(map[dnsname.Name]bool)
	a.each(func(s *detect.Sacrificial) {
		if !s.Hijackable() || !a.inWindow(s) {
			return
		}
		t.HijackableNS++
		isHijacked := s.Hijacked() && a.window.Contains(s.HijackedOn)
		if isHijacked {
			t.HijackedNS++
		}
		for _, d := range s.Domains {
			hijackable[d.Name] = true
			if isHijacked && d.Spans.Last() >= s.HijackedOn {
				hijacked[d.Name] = true
			}
		}
	})
	t.HijackableDomains = len(hijackable)
	t.HijackedDomains = len(hijacked)
	return t
}

// HijackerRow is one row of Table 4: a bulk hijacker identified by the
// registered domain of the controlling nameservers it installs.
type HijackerRow struct {
	NSDomain dnsname.Name
	NS       int // sacrificial nameserver domains registered
	Domains  int // distinct domains hijacked
}

// Table4 attributes hijacked sacrificial nameservers to bulk hijackers by
// the nameservers installed on the registered sacrificial domains — the
// only attribution signal zone data offers (§6.2).
func (a *Analysis) Table4(top int) []HijackerRow {
	type agg struct {
		ns      int
		domains map[dnsname.Name]bool
	}
	groups := make(map[dnsname.Name]*agg)
	a.each(func(s *detect.Sacrificial) {
		if !s.Hijacked() || !a.inWindow(s) {
			return
		}
		// Controlling nameservers: the NS records installed on the
		// registered sacrificial domain at (or after) the hijack.
		// Variants like protectdelegation.{ca,eu,com} group by their
		// second-level label, as the paper presents them.
		controllers := make(map[dnsname.Name]bool)
		for ns, spans := range a.db.NSHistory(s.RegDomain) {
			if spans.Last() >= s.HijackedOn {
				if reg, ok := dnsname.RegisteredDomain(ns); ok {
					key := reg
					if sld, ok := dnsname.SecondLevelLabel(ns); ok {
						key = dnsname.Name(sld)
					}
					controllers[key] = true
				}
			}
		}
		for c := range controllers {
			g := groups[c]
			if g == nil {
				g = &agg{domains: make(map[dnsname.Name]bool)}
				groups[c] = g
			}
			g.ns++
			for _, d := range s.Domains {
				if d.Spans.Last() >= s.HijackedOn {
					g.domains[d.Name] = true
				}
			}
		}
	})
	rows := make([]HijackerRow, 0, len(groups))
	for c, g := range groups {
		rows = append(rows, HijackerRow{NSDomain: c, NS: g.ns, Domains: len(g.domains)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Domains != rows[j].Domains {
			return rows[i].Domains > rows[j].Domains
		}
		return rows[i].NSDomain < rows[j].NSDomain
	})
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	return rows
}
