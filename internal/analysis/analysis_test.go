package analysis

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/dates"
	"repro/internal/detect"
	"repro/internal/dnsname"
	"repro/internal/idioms"
	"repro/internal/interval"
	"repro/internal/zonedb"
)

func d(n int) dates.Day { return dates.Day(n) }

func spans(ranges ...[2]int) *interval.Set {
	s := &interval.Set{}
	for _, r := range ranges {
		s.Add(dates.NewRange(d(r[0]), d(r[1])))
	}
	return s
}

// fixture builds a tiny, fully-known detection result:
//
//	sac1 (DropThisHost, hijackable, HIJACKED on day 110):
//	    v1 delegated days 100-500, v2 delegated days 100-150
//	sac2 (EnomRandom, hijackable, never hijacked):
//	    v3 delegated days 200-300
//	sac3 (LameDelegation sink, non-hijackable): v4 days 50-400
//	sac4 (PleaseDropThisHost, COLLISION): v5 days 120-130
//	sacX (excluded accident name): v6 days 10-20
func fixture() (*Analysis, *zonedb.DB) {
	db := zonedb.New()
	// Registration spans of the hijacked sacrificial domain: one year
	// from day 110, renewed once through day 840 (for Figure 7 steps).
	db.DomainAdded("biz", "dropthishost-1.biz", d(110))
	db.DomainRemoved("biz", "dropthishost-1.biz", d(840))
	// Controlling NS of the hijacked domain (Table 4 attribution).
	db.DelegationAdded("biz", "dropthishost-1.biz", "ns1.mpower.nl", d(110))
	db.DelegationRemoved("biz", "dropthishost-1.biz", "ns1.mpower.nl", d(840))
	db.Close(d(1000))

	sacs := []detect.Sacrificial{
		{
			NS: "dropthishost-1.biz", Created: d(100), Idiom: idioms.DropThisHost,
			Class: idioms.Hijackable, Registrar: "GoDaddy",
			RegDomain: "dropthishost-1.biz", HijackedOn: d(110),
			Domains: []detect.AffectedDomain{
				{Name: "v1.com", Spans: spans([2]int{100, 500})},
				{Name: "v2.com", Spans: spans([2]int{100, 150})},
			},
		},
		{
			NS: "ns1.foo1x.biz", Created: d(200), Idiom: idioms.EnomRandom,
			Class: idioms.Hijackable, Registrar: "Enom",
			RegDomain: "foo1x.biz", HijackedOn: dates.None,
			Domains: []detect.AffectedDomain{
				{Name: "v3.com", Spans: spans([2]int{200, 300})},
			},
		},
		{
			NS: "r1.lamedelegation.org", Created: d(50), Idiom: idioms.LameDelegation,
			Class: idioms.NonHijackable, Registrar: "Network Solutions",
			RegDomain: "lamedelegation.org", HijackedOn: dates.None,
			Domains: []detect.AffectedDomain{
				{Name: "v4.com", Spans: spans([2]int{50, 400})},
			},
		},
		{
			NS: "pleasedropthishostq.brand.biz", Created: d(120), Idiom: idioms.PleaseDropThisHost,
			Class: idioms.Hijackable, Registrar: "GoDaddy",
			RegDomain: "brand.biz", Collision: true, HijackedOn: dates.None,
			Domains: []detect.AffectedDomain{
				{Name: "v5.com", Spans: spans([2]int{120, 130})},
			},
		},
		{
			NS: "ns1.accident1.biz", Created: d(10), Idiom: idioms.EnomRandom,
			Class: idioms.Hijackable, Registrar: "Enom",
			RegDomain: "accident1.biz", HijackedOn: dates.None,
			Domains: []detect.AffectedDomain{
				{Name: "v6.com", Spans: spans([2]int{10, 20})},
			},
		},
	}
	res := detect.NewResult(sacs, detect.Funnel{
		TotalNameservers: 100, Candidates: 10, TestNameservers: 2,
		SingleRepoViolations: 1, Unclassified: 2, Sacrificial: 5,
	})
	window := dates.NewRange(d(0), d(1000))
	a := New(res, db, window, []dnsname.Name{"ns1.accident1.biz"})
	return a, db
}

func TestTable3(t *testing.T) {
	a, _ := fixture()
	t3 := a.Table3()
	// Hijackable: sac1, sac2 (collision sac4 excluded, sink sac3
	// excluded, accident sacX excluded).
	if t3.HijackableNS != 2 || t3.HijackedNS != 1 {
		t.Fatalf("NS counts = %d/%d", t3.HijackableNS, t3.HijackedNS)
	}
	// Domains: v1, v2, v3 hijackable; v1 and v2 hijacked (delegated past
	// day 110).
	if t3.HijackableDomains != 3 || t3.HijackedDomains != 2 {
		t.Fatalf("domain counts = %d/%d", t3.HijackableDomains, t3.HijackedDomains)
	}
	if t3.NSFraction() != 0.5 {
		t.Errorf("NSFraction = %f", t3.NSFraction())
	}
}

func TestTable1And2(t *testing.T) {
	a, _ := fixture()
	t1 := a.Table1()
	if len(t1.Rows) != 1 || t1.Rows[0].Idiom != idioms.LameDelegation || t1.Rows[0].AffectedDomains != 1 {
		t.Fatalf("Table1 = %+v", t1)
	}
	t2 := a.Table2()
	if len(t2.Rows) != 3 { // DropThisHost, EnomRandom, PDTH-collision
		t.Fatalf("Table2 rows = %+v", t2.Rows)
	}
	if t2.TotalNameservers != 3 || t2.TotalDomains != 4 {
		t.Fatalf("Table2 totals = %d NS / %d domains", t2.TotalNameservers, t2.TotalDomains)
	}
	for _, row := range t2.Rows {
		if row.Example == "" {
			t.Errorf("row %s missing example", row.Idiom)
		}
	}
}

func TestTable4(t *testing.T) {
	a, _ := fixture()
	rows := a.Table4(5)
	if len(rows) != 1 || rows[0].NSDomain != "mpower" {
		t.Fatalf("Table4 = %+v", rows)
	}
	if rows[0].NS != 1 || rows[0].Domains != 2 {
		t.Fatalf("Table4 counts = %+v", rows[0])
	}
}

func TestFigure3(t *testing.T) {
	a, _ := fixture()
	s := a.Figure3()
	// First exposures: v1+v2 day 100, v3 day 200 (collision v5 and
	// accident v6 excluded).
	if s.Total() != 3 {
		t.Fatalf("Figure3 total = %d", s.Total())
	}
}

func TestFigure4(t *testing.T) {
	a, _ := fixture()
	s := a.Figure4()
	if s.Total() != 2 { // v1 and v2, hijacked on day 110
		t.Fatalf("Figure4 total = %d", s.Total())
	}
}

func TestFigure5(t *testing.T) {
	a, _ := fixture()
	pts := a.Figure5()
	if len(pts) != 2 {
		t.Fatalf("Figure5 points = %+v", pts)
	}
	byNS := map[dnsname.Name]ScatterPoint{}
	for _, p := range pts {
		byNS[p.NS] = p
	}
	p1 := byNS["dropthishost-1.biz"]
	if p1.Value != 401+51 || p1.NDomains != 2 || !p1.Hijacked {
		t.Fatalf("sac1 point = %+v", p1)
	}
	p2 := byNS["ns1.foo1x.biz"]
	if p2.Value != 101 || p2.Hijacked {
		t.Fatalf("sac2 point = %+v", p2)
	}
}

func TestFigure6(t *testing.T) {
	a, _ := fixture()
	nsCDF, domCDF := a.Figure6()
	if nsCDF.N() != 1 || nsCDF.Quantile(0.5) != 10 {
		t.Fatalf("NS CDF: n=%d q50=%d", nsCDF.N(), nsCDF.Quantile(0.5))
	}
	if domCDF.N() != 2 || domCDF.Quantile(0.9) != 10 {
		t.Fatalf("domain CDF: n=%d", domCDF.N())
	}
}

func TestFigure7(t *testing.T) {
	a, _ := fixture()
	never, exposure, hijacked := a.Figure7()
	// Never hijacked: v3 (101 days exposure).
	if never.N() != 1 || never.Quantile(0.5) != 101 {
		t.Fatalf("never CDF: n=%d q=%d", never.N(), never.Quantile(0.5))
	}
	// Hijacked: v1 (401 days exposure), v2 (51 days).
	if exposure.N() != 2 {
		t.Fatalf("exposure CDF n=%d", exposure.N())
	}
	// Hijack durations: v1 from 110..500 = 391 days; v2 from 110..150 = 41.
	if hijacked.N() != 2 {
		t.Fatalf("hijacked CDF n=%d", hijacked.N())
	}
	if got := hijacked.Samples(); got[0] != 41 || got[1] != 391 {
		t.Fatalf("hijack durations = %v", got)
	}
}

func TestSnapshotAndTable5(t *testing.T) {
	a, _ := fixture()
	// Day 105: sac1 exposed (not yet hijacked), sac2 not created yet.
	s := a.SnapshotOn(d(105))
	if s.VulnerableNS != 1 || s.HijackedNS != 0 || s.VulnerableDomains != 2 {
		t.Fatalf("snapshot 105 = %+v", s)
	}
	// Day 250: sac1 hijacked (v1 still delegated), sac2 vulnerable (v3).
	s = a.SnapshotOn(d(250))
	if s.HijackedNS != 1 || s.VulnerableNS != 1 || s.HijackedDomains != 1 || s.VulnerableDomains != 1 {
		t.Fatalf("snapshot 250 = %+v", s)
	}
	// Day 900: everything gone ("disappeared").
	s = a.SnapshotOn(d(900))
	if s.VulnerableNS != 0 && s.HijackedNS != 0 {
		t.Fatalf("snapshot 900 = %+v", s)
	}
	dis := a.DisappearedBetween(d(250), d(600))
	// sac2 lost its only domain (v3 ends at 300): 1 NS, 1 domain gone.
	if dis.NS != 1 || dis.Domains != 1 {
		t.Fatalf("disappearance = %+v", dis)
	}
}

func TestAccidentReport(t *testing.T) {
	db := zonedb.New()
	db.DelegationAdded("com", "a.com", "ns1.acc.biz", d(100))
	db.DelegationAdded("com", "b.com", "ns1.acc.biz", d(100))
	db.DelegationRemoved("com", "a.com", "ns1.acc.biz", d(102))
	db.DelegationRemoved("com", "b.com", "ns1.acc.biz", d(150))
	db.Close(d(500))
	res := detect.NewResult(nil, detect.Funnel{})
	a := New(res, db, dates.NewRange(d(0), d(500)), nil)
	rep := a.Accident([]dnsname.Name{"ns1.acc.biz"}, d(500))
	if rep.Day != d(100) || rep.PeakDomains != 2 || rep.AfterThreeDays != 1 || rep.Residual != 0 {
		t.Fatalf("accident report = %+v", rep)
	}
	empty := a.Accident(nil, d(500))
	if empty.Day != dates.None {
		t.Error("empty accident should report no day")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]int{5, 1, 3, 3, 10})
	if c.N() != 5 {
		t.Fatal("N broken")
	}
	if c.At(0) != 0 || c.At(3) != 0.6 || c.At(100) != 1 {
		t.Errorf("At: %f %f %f", c.At(0), c.At(3), c.At(100))
	}
	if c.Quantile(0.5) != 3 || c.Quantile(1) != 10 {
		t.Errorf("Quantile: %d %d", c.Quantile(0.5), c.Quantile(1))
	}
	pts := c.Points()
	if len(pts) != 4 || pts[0][0] != 1 || pts[3][1] != 1 {
		t.Errorf("Points = %v", pts)
	}
	emptyCDF := NewCDF(nil)
	if emptyCDF.At(5) != 0 || emptyCDF.Quantile(0.5) != 0 {
		t.Error("empty CDF misbehaves")
	}
}

func TestMonthlySeriesTrend(t *testing.T) {
	down := &MonthlySeries{Counts: []int{10, 9, 8, 7, 6, 5}}
	if down.TrendSlope() >= 0 {
		t.Error("downward series has non-negative slope")
	}
	up := &MonthlySeries{Counts: []int{1, 2, 3, 4}}
	if up.TrendSlope() <= 0 {
		t.Error("upward series has non-positive slope")
	}
	flat := &MonthlySeries{Counts: []int{5}}
	if flat.TrendSlope() != 0 {
		t.Error("single-point slope should be 0")
	}
	if down.Total() != 45 {
		t.Error("Total broken")
	}
}

func TestPopularExposure(t *testing.T) {
	a, _ := fixture()
	n := a.PopularExposure(map[dnsname.Name]bool{"v1.com": true, "v9.com": true})
	if n != 1 {
		t.Fatalf("PopularExposure = %d", n)
	}
}

func TestFunnelPassThrough(t *testing.T) {
	a, _ := fixture()
	if a.Funnel().Candidates != 10 {
		t.Error("funnel not passed through")
	}
}

func TestSummarizeJSONRoundTrip(t *testing.T) {
	a, _ := fixture()
	s := a.Summarize(d(250), d(600))
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Funnel.Candidates != 10 || back.Table3.HijackableNS != 2 {
		t.Fatalf("summary content lost: %+v", back.Funnel)
	}
	if len(back.Figure5) != 2 || len(back.IdiomTimeline) == 0 {
		t.Fatalf("figure/timeline data lost")
	}
	if back.Table5 == nil || back.Table5.Remediated.NS != 1 {
		t.Fatalf("table5 = %+v", back.Table5)
	}
	if back.Window.First != d(0) {
		t.Fatalf("window = %+v", back.Window)
	}
}
