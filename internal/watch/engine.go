// Package watch re-implements the detection methodology incrementally.
//
// The batch Detector (internal/detect) answers "which nameservers were
// sacrificial" by scanning a complete longitudinal database. This
// package answers the same question one day at a time: an Engine
// consumes per-day deltas (internal/zonedb/delta) and advances a
// per-nameserver state machine — first-delegation resolvability check,
// idiom match, hijackable classification, registration watch, hijack
// event — touching only the names that changed. Replaying the full
// history through an Engine yields the same funnel and the same
// sacrificial records as a batch run over the same sealed view (proven
// in the equivalence tests); the per-day cost is O(changes), not
// O(database).
//
// Streaming can do one thing batch cannot — alert the day a sacrificial
// name appears — and cannot do one thing batch can: see the future. A
// candidate classified by the original-nameserver match may later gain
// a delegation that violates the single-repository property, which the
// batch pipeline checks first. The engine therefore demotes such
// candidates when the violating edge arrives and emits a "retracted"
// alert, so the final state still converges to the batch verdict.
//
// The engine's state is serializable: Checkpoint/Restore round-trips
// the whole machine through JSON so a killed watcher resumes exactly
// where it stopped, without replaying history.
package watch

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dates"
	"repro/internal/detect"
	"repro/internal/dnsname"
	"repro/internal/idioms"
	"repro/internal/interval"
	"repro/internal/registry"
	"repro/internal/whois"
	"repro/internal/zonedb/delta"
)

// maxDepth mirrors resolve.Static's delegation-chase bound. The per-day
// resolver below must prune exactly where the batch resolver prunes or
// the candidate sets diverge.
const maxDepth = 4

// ErrStale is returned by ApplyDay for a day at or before the engine's
// last applied day. Deltas are idempotent at the feed level precisely
// because the engine refuses replays: a resumed consumer can re-request
// an overlapping window and drop the overlap by this error.
var ErrStale = errors.New("watch: delta day already applied")

// Alert phases of a tracked nameserver. The zero value is unclassified.
const (
	phaseUnclassified = iota
	phaseTest
	phaseSingleRepo
	phaseSacrificial
)

// Alert types.
const (
	AlertSacrificial = "sacrificial" // new sacrificial nameserver detected
	AlertHijacked    = "hijacked"    // a watched registrable domain was registered
	AlertRetracted   = "retracted"   // earlier sacrificial verdict withdrawn (single-repo violation)
)

// Alert is one detection event, emitted the day it becomes knowable.
type Alert struct {
	Seq  uint64       `json:"seq"`
	Type string       `json:"type"`
	Day  dates.Day    `json:"day"`
	NS   dnsname.Name `json:"ns"`

	Method     string       `json:"method,omitempty"`
	Idiom      idioms.ID    `json:"idiom,omitempty"`
	Registrar  string       `json:"registrar,omitempty"`
	Original   dnsname.Name `json:"original,omitempty"`
	RegDomain  dnsname.Name `json:"reg_domain,omitempty"`
	Hijackable bool         `json:"hijackable"`
	Collision  bool         `json:"collision,omitempty"`
	// Domains is the number of affected domains known at alert time.
	Domains int `json:"domains"`
}

// nsState is the per-candidate state machine record. Fields are
// exported for the JSON checkpoint; the type itself stays private.
type nsState struct {
	NS    dnsname.Name `json:"ns"`
	First dates.Day    `json:"first"`
	Phase int          `json:"phase"`

	Method    string       `json:"method,omitempty"`
	Idiom     idioms.ID    `json:"idiom,omitempty"`
	Class     idioms.Class `json:"class,omitempty"`
	Registrar string       `json:"registrar,omitempty"`
	Original  dnsname.Name `json:"original,omitempty"`
	RegDomain dnsname.Name `json:"reg_domain,omitempty"`
	Collision bool         `json:"collision,omitempty"`

	HijackedOn dates.Day `json:"hijacked_on"`

	// Operators accumulates the registry operators of affected TLDs for
	// the monotone single-repository re-check (tracked for unclassified
	// and original-matched candidates, the only demotable phases).
	Operators map[string]bool `json:"operators,omitempty"`
	// Domains holds sealed delegation spans per affected domain; Open
	// holds the start day of each delegation still active.
	Domains map[dnsname.Name]*interval.Set `json:"domains,omitempty"`
	Open    map[dnsname.Name]dates.Day     `json:"open,omitempty"`
}

// tracked reports whether the phase still accumulates span/operator
// state (terminal test/single-repo candidates are frozen).
func (st *nsState) tracked() bool {
	return st.Phase == phaseUnclassified || st.Phase == phaseSacrificial
}

// numDomains counts the distinct affected domains known so far (sealed
// or still open).
func (st *nsState) numDomains() int {
	n := len(st.Domains)
	for dom := range st.Open {
		if _, sealed := st.Domains[dom]; !sealed {
			n++
		}
	}
	return n
}

// Engine is the incremental detector. It is not safe for concurrent
// use; one goroutine owns it (the daemon's apply loop).
type Engine struct {
	whois *whois.History
	dir   *registry.Directory

	// Day-d active state, maintained by applying adds and removes.
	glue   map[dnsname.Name]bool                   // hosts with glue today
	doms   map[dnsname.Name]bool                   // domains registered today
	active map[dnsname.Name]map[dnsname.Name]bool  // domain -> active NS set

	seen     map[dnsname.Name]dates.Day    // every NS ever delegated to -> first day
	cand     map[dnsname.Name]*nsState     // unresolvable-at-first-reference candidates
	regWatch map[dnsname.Name][]dnsname.Name // registrable domain -> hijackable NS watching it

	funnel detect.Funnel
	last   dates.Day
	seq    uint64
}

// New returns an empty engine sharing the batch detector's side inputs:
// the WHOIS registrar history and the registry-operator directory.
func New(wh *whois.History, dir *registry.Directory) *Engine {
	return &Engine{
		whois:    wh,
		dir:      dir,
		glue:     make(map[dnsname.Name]bool),
		doms:     make(map[dnsname.Name]bool),
		active:   make(map[dnsname.Name]map[dnsname.Name]bool),
		seen:     make(map[dnsname.Name]dates.Day),
		cand:     make(map[dnsname.Name]*nsState),
		regWatch: make(map[dnsname.Name][]dnsname.Name),
		last:     dates.None,
	}
}

// LastDay returns the last applied day, or dates.None before the first
// ApplyDay.
func (e *Engine) LastDay() dates.Day { return e.last }

// Seq returns the number of alerts emitted so far.
func (e *Engine) Seq() uint64 { return e.seq }

// Funnel returns the current candidate-elimination counts. After a full
// replay they equal the batch Detector's funnel.
func (e *Engine) Funnel() detect.Funnel { return e.funnel }

// ApplyDay advances the engine by one day. Days must be applied in
// strictly increasing order; gaps are fine (a skipped day is implicitly
// quiet). A day at or before LastDay returns ErrStale and changes
// nothing, which is what makes restart-and-rewind safe.
func (e *Engine) ApplyDay(dd *delta.DayDelta) ([]Alert, error) {
	day := dd.Day
	if day == dates.None {
		return nil, fmt.Errorf("watch: delta has no day")
	}
	if e.last != dates.None && day <= e.last {
		return nil, fmt.Errorf("%w: day %s, engine at %s", ErrStale, day, e.last)
	}
	var alerts []Alert

	// 1. Delegation removals: update the active sets, seal open spans of
	// tracked candidates, and remember which edges ended yesterday — the
	// original-nameserver match below needs exactly those.
	removedToday := make(map[dnsname.Name][]dnsname.Name)
	for _, ed := range dd.EdgesRemoved {
		if set := e.active[ed.Domain]; set != nil {
			delete(set, ed.NS)
			if len(set) == 0 {
				delete(e.active, ed.Domain)
			}
		}
		removedToday[ed.Domain] = append(removedToday[ed.Domain], ed.NS)
		if st := e.cand[ed.NS]; st != nil && st.tracked() {
			if open, ok := st.Open[ed.Domain]; ok {
				st.span(ed.Domain).Add(dates.NewRange(open, day-1))
				delete(st.Open, ed.Domain)
			}
		}
	}

	// 2. Delegation additions: update active sets, note first
	// appearances, and extend tracked candidates (new operators may
	// trigger a single-repo demotion in step 6).
	var newNS []dnsname.Name
	newEdges := make(map[dnsname.Name][]dnsname.Name) // new NS -> today's domains
	var touched []dnsname.Name
	for _, ed := range dd.EdgesAdded {
		set := e.active[ed.Domain]
		if set == nil {
			set = make(map[dnsname.Name]bool)
			e.active[ed.Domain] = set
		}
		set[ed.NS] = true
		if _, ok := e.seen[ed.NS]; !ok {
			e.seen[ed.NS] = day
			e.funnel.TotalNameservers++
			newNS = append(newNS, ed.NS)
		}
		if e.seen[ed.NS] == day {
			// First-day delegations feed classification in step 5.
			newEdges[ed.NS] = append(newEdges[ed.NS], ed.Domain)
			continue
		}
		if st := e.cand[ed.NS]; st != nil && st.tracked() {
			if st.Open == nil {
				st.Open = make(map[dnsname.Name]dates.Day)
			}
			st.Open[ed.Domain] = day
			if op := e.dir.OperatorOf(ed.Domain.TLD()); op != "" {
				if st.Operators == nil {
					st.Operators = make(map[string]bool)
				}
				st.Operators[op] = true
			}
			touched = append(touched, ed.NS)
		}
	}

	// 3. Domain registration churn. A registration fires the hijack
	// watch of any sacrificial NS whose registrable domain this is; the
	// watchers were all registered on earlier days (a same-day
	// registration is a collision, handled at classification).
	for _, dom := range dd.DomainsAdded {
		e.doms[dom] = true
		if watchers := e.regWatch[dom]; len(watchers) > 0 {
			for _, ns := range watchers {
				st := e.cand[ns]
				st.HijackedOn = day
				alerts = append(alerts, e.alert(Alert{
					Type: AlertHijacked, Day: day, NS: ns,
					Method: st.Method, Idiom: st.Idiom, Registrar: st.Registrar,
					Original: st.Original, RegDomain: st.RegDomain,
					Hijackable: true, Domains: st.numDomains(),
				}))
			}
			delete(e.regWatch, dom)
		}
	}
	for _, dom := range dd.DomainsRemoved {
		delete(e.doms, dom)
	}

	// 4. Glue churn.
	for _, h := range dd.GlueAdded {
		e.glue[h] = true
	}
	for _, h := range dd.GlueRemoved {
		delete(e.glue, h)
	}

	// 5. Classify nameservers first delegated to today, in name order
	// (the batch pipeline sorts candidates the same way). Resolvability
	// is evaluated against today's active state, which is exactly
	// ResolvableSpans(ns).Contains(today) on the sealed view: every set
	// operation in the static resolver distributes pointwise over days.
	sort.Slice(newNS, func(i, j int) bool { return newNS[i] < newNS[j] })
	memo := make(map[dnsname.Name]bool)
	for _, ns := range newNS {
		if e.resolvableToday(ns, 0, memo, make(map[dnsname.Name]bool)) {
			continue
		}
		e.funnel.Candidates++
		alerts = e.classify(ns, day, newEdges[ns], removedToday, alerts)
	}

	// 6. Re-check the single-repository property of candidates that
	// gained delegations today. The violation is monotone (the operator
	// set only grows), and in the batch pipeline it is tested before the
	// original-nameserver match — so an unclassified or original-matched
	// candidate that now violates must demote to match the batch verdict.
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	var prev dnsname.Name
	for _, ns := range touched {
		if ns == prev {
			continue
		}
		prev = ns
		st := e.cand[ns]
		if !st.tracked() || !e.violatesSingleRepo(st) {
			continue
		}
		if st.Phase == phaseSacrificial {
			if st.Method != "original" {
				continue // sink/marker idioms classify before the single-repo stage
			}
			e.funnel.Sacrificial--
			e.unwatch(st)
			alerts = append(alerts, e.alert(Alert{
				Type: AlertRetracted, Day: day, NS: ns,
				Method: st.Method, Idiom: st.Idiom, Registrar: st.Registrar,
				Original: st.Original, RegDomain: st.RegDomain,
				Domains: st.numDomains(),
			}))
		} else {
			e.funnel.Unclassified--
		}
		e.funnel.SingleRepoViolations++
		st.Phase = phaseSingleRepo
		st.Operators, st.Domains, st.Open = nil, nil, nil
	}

	e.last = day
	return alerts, nil
}

// classify runs the batch pipeline's per-candidate stages (test filter,
// sink/marker idioms, single-repository property, original-nameserver
// match) against first-day state.
func (e *Engine) classify(ns dnsname.Name, day dates.Day, domains []dnsname.Name, removedToday map[dnsname.Name][]dnsname.Name, alerts []Alert) []Alert {
	st := &nsState{NS: ns, First: day, HijackedOn: dates.None}
	e.cand[ns] = st

	if idioms.IsTestNameserver(ns) {
		st.Phase = phaseTest
		e.funnel.TestNameservers++
		return alerts
	}

	var idiom *idioms.Idiom
	if id, ok := idioms.RecognizeSink(ns); ok {
		idiom, st.Method, st.Registrar = id, "sink", id.Registrar
	} else if id, ok := idioms.RecognizeMarker(ns); ok {
		idiom, st.Method, st.Registrar = id, "marker", id.Registrar
	}

	// Track spans and operators from the first-day delegations; needed
	// for every non-terminal outcome below.
	sort.Slice(domains, func(i, j int) bool { return domains[i] < domains[j] })
	st.Domains = make(map[dnsname.Name]*interval.Set)
	st.Open = make(map[dnsname.Name]dates.Day)
	st.Operators = make(map[string]bool)
	for _, dom := range domains {
		st.Open[dom] = day
		if op := e.dir.OperatorOf(dom.TLD()); op != "" {
			st.Operators[op] = true
		}
	}

	if idiom == nil {
		// Single-repository property, then the §3.2.3 history match.
		if e.violatesSingleRepo(st) {
			st.Phase = phaseSingleRepo
			e.funnel.SingleRepoViolations++
			st.Operators, st.Domains, st.Open = nil, nil, nil
			return alerts
		}
		var orig dnsname.Name
		idiom, st.Registrar, orig = e.matchOriginal(ns, day, domains, removedToday)
		if idiom == nil {
			e.funnel.Unclassified++
			return alerts // stays unclassified (tracked for demotion)
		}
		st.Method, st.Original = "original", orig
	}

	st.Phase = phaseSacrificial
	st.Idiom, st.Class = idiom.ID, idiom.Class
	e.funnel.Sacrificial++
	if reg, ok := dnsname.RegisteredDomain(ns); ok {
		st.RegDomain = reg
	}
	hijackable := false
	if st.Class == idioms.Hijackable && st.RegDomain != "" {
		if e.doms[st.RegDomain] {
			st.Collision = true // already registered the day the name appeared
		} else {
			hijackable = true
			e.regWatch[st.RegDomain] = append(e.regWatch[st.RegDomain], ns)
		}
	}
	return append(alerts, e.alert(Alert{
		Type: AlertSacrificial, Day: day, NS: ns,
		Method: st.Method, Idiom: st.Idiom, Registrar: st.Registrar,
		Original: st.Original, RegDomain: st.RegDomain,
		Hijackable: hijackable, Collision: st.Collision,
		Domains: st.numDomains(),
	}))
}

// matchOriginal is the incremental §3.2.3 match. The batch version
// looks for previous nameservers of the candidate's first-day domains
// whose delegation span ends exactly the day before — which, seen from
// the stream, is precisely the set of edges removed today (a span
// ending on day-1 exists iff the delta feed emitted its removal today).
func (e *Engine) matchOriginal(ns dnsname.Name, day dates.Day, domains []dnsname.Name, removedToday map[dnsname.Name][]dnsname.Name) (*idioms.Idiom, string, dnsname.Name) {
	type match struct {
		rr   string
		prev dnsname.Name
	}
	var matches []match
	for _, dom := range domains {
		for _, prevNS := range removedToday[dom] {
			if prevNS == ns || !idioms.MatchesOriginal(ns, prevNS) {
				continue
			}
			reg, ok := dnsname.RegisteredDomain(prevNS)
			if !ok {
				continue
			}
			rr := e.whois.RegistrarOn(reg, day-1)
			if rr == "" {
				continue
			}
			matches = append(matches, match{rr, prevNS})
		}
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].rr != matches[j].rr {
			return matches[i].rr < matches[j].rr
		}
		return matches[i].prev < matches[j].prev
	})
	votes := make(map[string]int)
	originals := make(map[string]dnsname.Name)
	for _, m := range matches {
		votes[m.rr]++
		if _, have := originals[m.rr]; !have {
			originals[m.rr] = m.prev
		}
	}
	if len(votes) == 0 {
		return nil, "", ""
	}
	var best string
	for rr := range votes {
		if best == "" || votes[rr] > votes[best] || (votes[rr] == votes[best] && rr < best) {
			best = rr
		}
	}
	idiom := detect.OriginalIdiomFor(best, ns, originals[best])
	if idiom == nil {
		return nil, "", ""
	}
	return idiom, best, originals[best]
}

// violatesSingleRepo applies property 3 of §3.1 over the accumulated
// operator set: more than one repository, or the candidate living under
// the same operator as its affected domains.
func (e *Engine) violatesSingleRepo(st *nsState) bool {
	if len(st.Operators) > 1 {
		return true
	}
	if op := e.dir.OperatorOf(st.NS.TLD()); op != "" && st.Operators[op] {
		return true
	}
	return false
}

// resolvableToday mirrors resolve.Static pointwise on the current day:
// glue, or an active delegation of the registered domain to a parent
// that itself resolves, chased to the same depth bound with the same
// cycle guard and the same memo-before-prune order.
func (e *Engine) resolvableToday(ns dnsname.Name, depth int, memo map[dnsname.Name]bool, inRun map[dnsname.Name]bool) bool {
	if v, ok := memo[ns]; ok {
		return v
	}
	if depth >= maxDepth || inRun[ns] {
		return false
	}
	inRun[ns] = true
	defer delete(inRun, ns)

	res := e.glue[ns]
	if !res {
		if reg, ok := dnsname.RegisteredDomain(ns); ok {
			for parentNS := range e.active[reg] {
				if parentNS == ns {
					continue
				}
				if e.resolvableToday(parentNS, depth+1, memo, inRun) {
					res = true
					break
				}
			}
		}
	}
	if depth == 0 {
		memo[ns] = res
	}
	return res
}

// unwatch removes a demoted candidate from its registration watch.
func (e *Engine) unwatch(st *nsState) {
	if st.RegDomain == "" {
		return
	}
	ws := e.regWatch[st.RegDomain]
	for i, ns := range ws {
		if ns == st.NS {
			ws = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(ws) == 0 {
		delete(e.regWatch, st.RegDomain)
	} else {
		e.regWatch[st.RegDomain] = ws
	}
}

func (e *Engine) alert(a Alert) Alert {
	e.seq++
	a.Seq = e.seq
	return a
}

// span returns (creating if needed) the sealed-span set of one affected
// domain.
func (st *nsState) span(dom dnsname.Name) *interval.Set {
	if st.Domains == nil {
		st.Domains = make(map[dnsname.Name]*interval.Set)
	}
	s, ok := st.Domains[dom]
	if !ok {
		s = &interval.Set{}
		st.Domains[dom] = s
	}
	return s
}

// Result exports the engine's current verdicts in the batch Detector's
// shape: the funnel plus one Sacrificial record per still-standing
// sacrificial nameserver, sorted by name, with delegations still open
// sealed at the last applied day. After replaying a sealed view's full
// delta window, the result equals the batch Detector's output on that
// view.
func (e *Engine) Result() *detect.Result {
	var sacs []detect.Sacrificial
	for _, st := range e.cand {
		if st.Phase != phaseSacrificial {
			continue
		}
		s := detect.Sacrificial{
			NS:         st.NS,
			Created:    st.First,
			Idiom:      st.Idiom,
			Class:      st.Class,
			Registrar:  st.Registrar,
			Original:   st.Original,
			RegDomain:  st.RegDomain,
			Collision:  st.Collision,
			HijackedOn: st.HijackedOn,
		}
		doms := make(map[dnsname.Name]*interval.Set, len(st.Domains))
		for dom, spans := range st.Domains {
			c := spans.Clone()
			doms[dom] = &c
		}
		for dom, open := range st.Open {
			set, ok := doms[dom]
			if !ok {
				set = &interval.Set{}
				doms[dom] = set
			}
			set.Add(dates.NewRange(open, e.last))
		}
		for dom, spans := range doms {
			s.Domains = append(s.Domains, detect.AffectedDomain{Name: dom, Spans: spans})
		}
		sort.Slice(s.Domains, func(i, j int) bool { return s.Domains[i].Name < s.Domains[j].Name })
		sacs = append(sacs, s)
	}
	sort.Slice(sacs, func(i, j int) bool { return sacs[i].NS < sacs[j].NS })
	return detect.NewResult(sacs, e.funnel)
}
