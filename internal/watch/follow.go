package watch

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/dates"
	"repro/internal/dzdbapi"
	"repro/internal/obs"
	"repro/internal/zonedb/delta"
)

// Follower tails a remote dzdbapi /v1/deltas feed into an Engine. It
// never loses or duplicates an alert regardless of transport faults:
// every catch-up pass asks the server for days strictly after the
// engine's last applied day, and the engine itself refuses replays
// (ErrStale), so a request that died mid-page, a retried response, or a
// restart from a checkpoint all converge on the same alert stream.
type Follower struct {
	Client *dzdbapi.Client
	Engine *Engine

	// OnAlert receives every alert in emission order.
	OnAlert func(Alert)
	// OnApplied, when set, runs after each applied day with the feed's
	// close day — the daemon hooks per-day metrics and checkpointing
	// here.
	OnApplied func(day, closeDay dates.Day, alerts int)
	// OnPass, when set, runs after every catch-up pass — successful or
	// not, including passes that applied nothing — with the engine's
	// position, the feed's close day (dates.None when the pass failed
	// before reading a page), and the pass error. The daemon hooks feed
	// lag and the feed-reachability health check here, so a stalled or
	// empty feed still moves the gauges every poll instead of freezing
	// them at the last applied day.
	OnPass func(lastApplied, closeDay dates.Day, err error)

	// PageSize is the number of days requested per page (default 365).
	PageSize int
	// Poll is the delay between catch-up passes once the feed is
	// exhausted (default 2s). In long-poll and SSE modes it is the
	// reconnect backoff after a transport failure.
	Poll time.Duration
	// Once stops after the first pass that reaches the feed's close day
	// instead of polling forever.
	Once bool

	// Mode selects the feed transport: ModePoll (default) re-requests
	// at the Poll cadence; ModeLongPoll parks one request server-side
	// (?wait=) so a caught-up follower costs one outstanding request
	// per epoch instead of a poll loop; ModeSSE holds one streaming
	// connection and applies events as the server pushes them.
	Mode string
	// Wait is the long-poll hold sent as ?wait= (default 30s; only
	// meaningful in ModeLongPoll).
	Wait time.Duration

	// Obs, when set, instruments the apply loop as the one-worker
	// "watch_apply" pool: busy time per applied day, days applied, and
	// per-pass efficiency (apply time ÷ pass wall — the fraction of a
	// pass spent applying rather than fetching or idle).
	Obs *obs.Registry

	Log *slog.Logger

	pool *obs.PoolStats
}

// Feed transport modes for Follower.Mode.
const (
	ModePoll     = "poll"
	ModeLongPoll = "longpoll"
	ModeSSE      = "sse"
)

// errStopFollow stops the SSE consumer from inside the event callback
// once Once-mode catch-up completes.
var errStopFollow = errors.New("watch: follower caught up")

func (f *Follower) pageSize() int {
	if f.PageSize > 0 {
		return f.PageSize
	}
	return 365
}

func (f *Follower) poll() time.Duration {
	if f.Poll > 0 {
		return f.Poll
	}
	return 2 * time.Second
}

func (f *Follower) wait() time.Duration {
	if f.Wait > 0 {
		return f.Wait
	}
	return 30 * time.Second
}

// Run follows the feed until ctx is done (or, with Once, until caught
// up). Transport errors that survive the client's own retry policy are
// logged and retried at the poll cadence; in Once mode they abort.
func (f *Follower) Run(ctx context.Context) error {
	if f.Obs != nil && f.pool == nil {
		f.pool = f.Obs.NewPoolStats("watch_apply", 1)
	}
	if f.Mode == ModeSSE {
		return f.runSSE(ctx)
	}
	for {
		passStart := time.Now()
		before := f.Engine.LastDay()
		caughtUp, closeDay, err := f.sync(ctx)
		passDur := time.Since(passStart)
		if f.pool != nil {
			f.pool.EndRound(passDur)
		}
		if f.OnPass != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			f.OnPass(f.Engine.LastDay(), closeDay, err)
		}
		switch {
		case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
			return err
		case err != nil && f.Once:
			return err
		case err != nil:
			if f.Log != nil {
				f.Log.Warn("delta feed pass failed; will retry", "err", err)
			}
		case caughtUp && f.Once:
			return nil
		}
		if f.Mode == ModeLongPoll && err == nil &&
			(f.Engine.LastDay() != before || passDur >= f.wait()/2) {
			// The server parked the request (or delivered work): loop
			// straight into the next long-poll. The quick-empty-return
			// case below means the server ignored ?wait (an old
			// binary), so fall back to the poll cadence rather than
			// busy-loop.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(f.poll()):
		}
	}
}

// runSSE consumes the feed's push stream: one connection delivers
// every sealed day and then each new epoch's days as the server
// publishes them — a caught-up follower issues zero additional
// requests per epoch. Dropped streams (including backpressure sheds)
// reconnect from the engine's position after the poll backoff;
// exactly-once application is preserved by the same day-dedup the
// poll path uses.
func (f *Follower) runSSE(ctx context.Context) error {
	for {
		from := dates.None
		if last := f.Engine.LastDay(); last != dates.None {
			from = last + 1
		}
		err := f.Client.StreamDeltas(ctx, from, func(resp *dzdbapi.DeltasResponse) error {
			for i := range resp.Deltas {
				if err := f.apply(resp.Deltas[i].Delta(), resp.CloseDay); err != nil {
					return err
				}
			}
			if f.OnPass != nil {
				f.OnPass(f.Engine.LastDay(), resp.CloseDay, nil)
			}
			if f.Once && resp.CloseDay != dates.None && f.Engine.LastDay() >= resp.CloseDay {
				return errStopFollow
			}
			return nil
		})
		switch {
		case errors.Is(err, errStopFollow):
			return nil
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return err
		case ctx.Err() != nil:
			return ctx.Err()
		}
		if f.OnPass != nil && err != nil {
			f.OnPass(f.Engine.LastDay(), dates.None, err)
		}
		if err != nil && f.Once {
			return err
		}
		if f.Log != nil && err != nil {
			f.Log.Warn("delta stream failed; reconnecting", "err", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(f.poll()):
		}
	}
}

// sync performs one catch-up pass: request days after the engine's last
// applied day and walk the cursor chain until the page window is
// exhausted. It reports whether the engine reached the feed's close
// day, and the close day itself (dates.None when no page was read).
func (f *Follower) sync(ctx context.Context) (bool, dates.Day, error) {
	from := dates.None
	if last := f.Engine.LastDay(); last != dates.None {
		from = last + 1
	}
	cursor := ""
	epoch := uint64(0)
	closeDay := dates.None
	for {
		var resp *dzdbapi.DeltasResponse
		var err error
		if f.Mode == ModeLongPoll {
			resp, err = f.Client.DeltasPoll(ctx, from, cursor, f.pageSize(), f.wait())
		} else {
			resp, err = f.Client.Deltas(ctx, from, cursor, f.pageSize())
		}
		if err != nil {
			return false, closeDay, err
		}
		closeDay = resp.CloseDay
		if cursor != "" && resp.Epoch != epoch {
			// The server adopted a new archive mid-walk; the cursor
			// belongs to the old index. Restart from the engine's
			// position — nothing applied so far is lost.
			if f.Log != nil {
				f.Log.Info("feed epoch changed mid-walk; restarting pass",
					"old", epoch, "new", resp.Epoch)
			}
			return false, closeDay, nil
		}
		epoch = resp.Epoch
		if resp.FirstDay == dates.None {
			return true, closeDay, nil // sealed but empty database
		}
		for i := range resp.Deltas {
			dd := resp.Deltas[i].Delta()
			if err := f.apply(dd, resp.CloseDay); err != nil {
				return false, closeDay, err
			}
		}
		if resp.NextCursor == "" {
			return f.Engine.LastDay() >= resp.CloseDay, closeDay, nil
		}
		cursor = resp.NextCursor
	}
}

func (f *Follower) apply(dd *delta.DayDelta, closeDay dates.Day) error {
	if last := f.Engine.LastDay(); last != dates.None && dd.Day <= last {
		return nil // overlap from a retried or rewound page; already applied
	}
	start := time.Now()
	alerts, err := f.Engine.ApplyDay(dd)
	if f.pool != nil {
		w := f.pool.Worker(0)
		w.ObserveBusy(time.Since(start))
		w.AddItems(1)
	}
	if err != nil {
		if errors.Is(err, ErrStale) {
			return nil
		}
		return fmt.Errorf("applying %s: %w", dd.Day, err)
	}
	if f.OnAlert != nil {
		for _, a := range alerts {
			f.OnAlert(a)
		}
	}
	if f.OnApplied != nil {
		f.OnApplied(dd.Day, closeDay, len(alerts))
	}
	return nil
}
