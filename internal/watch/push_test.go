package watch

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dates"
	"repro/internal/dnsname"
	"repro/internal/dzdbapi"
	"repro/internal/sim"
	"repro/internal/whois"
	"repro/internal/zonedb"
)

// feedDB builds a small zone history sealed at lastDay; extra domains
// (one per day past day 2) make later epochs distinguishable.
func feedDB(lastDay dates.Day) *zonedb.DB {
	db := zonedb.New()
	db.DomainAdded("net", "victim.net", 0)
	db.DelegationAdded("net", "victim.net", "ns1.host.com", 0)
	db.DomainAdded("com", "host.com", 0)
	db.GlueAdded("com", "ns1.host.com", 0)
	db.DelegationAdded("com", "host.com", "ns1.host.com", 0)
	for d := dates.Day(3); d <= lastDay; d++ {
		db.DomainAdded("net", dnsname.Name(fmt.Sprintf("day%d.net", d)), d)
	}
	db.Close(lastDay)
	return db
}

// pushEngine builds an engine with an empty WHOIS history and the
// standard registry directory, as riskywatchd does.
func pushEngine() *Engine {
	return New(whois.New(), sim.StandardDirectory())
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFollowerSSE is the acceptance criterion end to end: a follower in
// SSE mode catches up and then observes a newly adopted epoch's days
// over the same connection — one feed request across two epochs.
func TestFollowerSSE(t *testing.T) {
	db := feedDB(10)
	srv := dzdbapi.New(db)
	var feedRequests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/deltas" {
			feedRequests.Add(1)
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	// The engine is owned by the follower goroutine; mirror its position
	// through OnApplied (as riskywatchd does) for concurrent assertions.
	var lastDay atomic.Int64
	f := &Follower{
		Client:    &dzdbapi.Client{BaseURL: ts.URL},
		Engine:    pushEngine(),
		Mode:      ModeSSE,
		OnApplied: func(day, _ dates.Day, _ int) { lastDay.Store(int64(day)) },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- f.Run(ctx) }()

	waitFor(t, "SSE catch-up", func() bool { return lastDay.Load() == 10 })
	db.Adopt(feedDB(11))
	waitFor(t, "pushed epoch", func() bool { return lastDay.Load() == 11 })

	if got := feedRequests.Load(); got != 1 {
		t.Errorf("feed requests across 2 epochs = %d, want 1", got)
	}
	cancel()
	if err := <-runErr; !errors.Is(err, context.Canceled) {
		t.Errorf("Run = %v, want context.Canceled", err)
	}
}

// TestFollowerLongPoll: in long-poll mode the follower parks one
// request server-side and applies a new epoch's days the moment it
// publishes, with a bounded request count — no poll-cadence loop.
func TestFollowerLongPoll(t *testing.T) {
	db := feedDB(10)
	srv := dzdbapi.New(db)
	var feedRequests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/deltas" {
			feedRequests.Add(1)
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	var lastDay atomic.Int64
	f := &Follower{
		Client:    &dzdbapi.Client{BaseURL: ts.URL},
		Engine:    pushEngine(),
		Mode:      ModeLongPoll,
		Wait:      20 * time.Second,
		Poll:      20 * time.Second, // a poll-cadence fallback would stall the test
		OnApplied: func(day, _ dates.Day, _ int) { lastDay.Store(int64(day)) },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- f.Run(ctx) }()

	waitFor(t, "long-poll catch-up", func() bool { return lastDay.Load() == 10 })
	db.Adopt(feedDB(11))
	waitFor(t, "long-polled epoch", func() bool { return lastDay.Load() == 11 })

	// Catch-up pass, the parked poll that delivered the epoch, and at
	// most the follow-up park: anything more means the mode degraded to
	// polling.
	if got := feedRequests.Load(); got > 4 {
		t.Errorf("feed requests = %d, want <= 4 (one parked request per epoch)", got)
	}
	cancel()
	if err := <-runErr; !errors.Is(err, context.Canceled) {
		t.Errorf("Run = %v, want context.Canceled", err)
	}
}

// TestFollowerLongPollOnce: Once-mode still terminates after catch-up
// when long-polling — the parked request must not block completion.
func TestFollowerLongPollOnce(t *testing.T) {
	db := feedDB(10)
	ts := httptest.NewServer(dzdbapi.New(db))
	t.Cleanup(ts.Close)

	e := pushEngine()
	f := &Follower{
		Client: &dzdbapi.Client{BaseURL: ts.URL},
		Engine: e,
		Mode:   ModeLongPoll,
		Wait:   time.Second,
		Once:   true,
	}
	if err := f.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.LastDay() != 10 {
		t.Errorf("caught up to %s, want day 10", e.LastDay())
	}
}
