package watch

import (
	"testing"

	"repro/internal/dates"
	"repro/internal/detect"
	"repro/internal/dnsname"
	"repro/internal/sim"
	"repro/internal/whois"
	"repro/internal/zonedb"
	"repro/internal/zonedb/delta"
)

// TestDemotionAndHijack hand-builds the one history the streaming
// engine cannot get right on first sight: a rename classified by the
// original-nameserver match that LATER gains a delegation from a second
// registry operator. The batch pipeline checks the single-repository
// property before the history match, so its verdict is "single-repo
// violation"; the engine must converge to that verdict by retracting
// its earlier alert. A second rename stays clean and is hijacked, so
// the registration watch fires too.
func TestDemotionAndHijack(t *testing.T) {
	org := dnsname.MustParse("org")
	biz := dnsname.MustParse("biz")
	us := dnsname.MustParse("us")
	shop := dnsname.MustParse("shop.org")
	blog := dnsname.MustParse("blog.org")
	another := dnsname.MustParse("another.us")
	victimNS := dnsname.MustParse("ns1.victim.com")
	victimSac := dnsname.MustParse("ns1.victim123.biz")
	acmeNS := dnsname.MustParse("ns1.acme.com")
	acmeSac := dnsname.MustParse("ns1.acme123.biz")

	d0 := dates.FromYMD(2020, 1, 1)
	rename := d0.Add(9)    // both domains renamed away on day 10
	violate := d0.Add(19)  // victim's sacrificial gains a .us delegation
	hijack := d0.Add(29)   // acme's sacrificial domain gets registered
	closeAt := d0.Add(39)

	db := zonedb.New()
	db.DomainAdded(org, shop, d0)
	db.DomainAdded(org, blog, d0)
	db.DelegationAdded(org, shop, victimNS, d0)
	db.DelegationAdded(org, blog, acmeNS, d0)
	db.DelegationRemoved(org, shop, victimNS, rename)
	db.DelegationRemoved(org, blog, acmeNS, rename)
	db.DelegationAdded(org, shop, victimSac, rename)
	db.DelegationAdded(org, blog, acmeSac, rename)
	db.DomainAdded(us, another, d0)
	db.DelegationAdded(us, another, victimSac, violate)
	db.DomainAdded(biz, dnsname.MustParse("acme123.biz"), hijack)
	db.CloseZones(map[dnsname.Name]dates.Day{org: closeAt, biz: closeAt, us: closeAt})

	wh := whois.New()
	wh.Observe(dnsname.MustParse("victim.com"), d0, "Enom")
	wh.Observe(dnsname.MustParse("acme.com"), d0, "Enom")
	dir := sim.StandardDirectory()

	idx, err := delta.Build(db.View())
	if err != nil {
		t.Fatalf("delta.Build: %v", err)
	}
	e := New(wh, dir)
	var alerts []Alert
	for d := idx.First(); d <= idx.Last(); d++ {
		as, err := e.ApplyDay(idx.Day(d))
		if err != nil {
			t.Fatalf("ApplyDay(%s): %v", d, err)
		}
		alerts = append(alerts, as...)
	}

	want := []struct {
		typ string
		day dates.Day
		ns  dnsname.Name
	}{
		{AlertSacrificial, rename, acmeSac},
		{AlertSacrificial, rename, victimSac},
		{AlertRetracted, violate, victimSac},
		{AlertHijacked, hijack, acmeSac},
	}
	if len(alerts) != len(want) {
		t.Fatalf("got %d alerts, want %d: %+v", len(alerts), len(want), alerts)
	}
	for i, w := range want {
		a := alerts[i]
		if a.Type != w.typ || a.Day != w.day || a.NS != w.ns {
			t.Errorf("alert %d: got (%s %s %s), want (%s %s %s)",
				i, a.Type, a.Day, a.NS, w.typ, w.day, w.ns)
		}
		if a.Seq != uint64(i+1) {
			t.Errorf("alert %d: seq %d, want %d", i, a.Seq, i+1)
		}
	}
	if !alerts[0].Hijackable || alerts[0].Registrar != "Enom" || alerts[0].Original != acmeNS {
		t.Errorf("sacrificial alert details: %+v", alerts[0])
	}

	f := e.Funnel()
	// Four NS ever delegated to; all unresolvable at first reference;
	// the two originals stay unclassified, victim's rename is demoted to
	// the single-repo bucket, acme's stands.
	if f.TotalNameservers != 4 || f.Candidates != 4 || f.SingleRepoViolations != 1 ||
		f.Unclassified != 2 || f.Sacrificial != 1 || f.TestNameservers != 0 {
		t.Errorf("funnel: %+v", f)
	}

	// And the converged state equals the batch verdict on the same DB.
	batch := (&detect.Detector{DB: db, WHOIS: wh, Dir: dir,
		Cfg: detect.Config{SkipMining: true}}).Run()
	diffResults(t, batch, e.Result())
	got := e.Result().Lookup(acmeSac)
	if got == nil || !got.Hijacked() || got.HijackedOn != hijack {
		t.Fatalf("acme sacrificial: %+v", got)
	}
}
