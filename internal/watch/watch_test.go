package watch

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/dates"
	"repro/internal/detect"
	"repro/internal/sim"
	"repro/internal/zonedb"
	"repro/internal/zonedb/delta"
)

// buildWorld simulates the standard ecosystem and returns it with its
// sealed view and delta index.
func buildWorld(t *testing.T, scale float64, seed int64) (*sim.World, *zonedb.View, *delta.Index) {
	t.Helper()
	cfg := sim.DefaultConfig(scale)
	cfg.Seed = seed
	w, err := sim.NewWorld(cfg)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	v := w.ZoneDB().View()
	if !v.Closed() {
		t.Fatal("simulated view not closed")
	}
	idx, err := delta.Build(v)
	if err != nil {
		t.Fatalf("delta.Build: %v", err)
	}
	return w, v, idx
}

// replay applies every day of the index through the engine, returning
// all alerts.
func replay(t *testing.T, e *Engine, idx *delta.Index, from, to dates.Day) []Alert {
	t.Helper()
	var alerts []Alert
	for d := from; d <= to; d++ {
		as, err := e.ApplyDay(idx.Day(d))
		if err != nil {
			t.Fatalf("ApplyDay(%s): %v", d, err)
		}
		alerts = append(alerts, as...)
	}
	return alerts
}

// diffResults fails the test on any divergence between the batch and
// incremental results.
func diffResults(t *testing.T, batch, inc *detect.Result) {
	t.Helper()
	if batch.Funnel != inc.Funnel {
		t.Errorf("funnel mismatch:\n batch %+v\n watch %+v", batch.Funnel, inc.Funnel)
	}
	if len(batch.Sacrificial) != len(inc.Sacrificial) {
		t.Fatalf("sacrificial count: batch %d, watch %d", len(batch.Sacrificial), len(inc.Sacrificial))
	}
	for i := range batch.Sacrificial {
		b, w := &batch.Sacrificial[i], &inc.Sacrificial[i]
		if b.NS != w.NS {
			t.Fatalf("record %d: batch NS %s, watch NS %s", i, b.NS, w.NS)
		}
		if b.Created != w.Created || b.Idiom != w.Idiom || b.Class != w.Class ||
			b.Registrar != w.Registrar || b.Original != w.Original ||
			b.RegDomain != w.RegDomain || b.Collision != w.Collision ||
			b.HijackedOn != w.HijackedOn {
			t.Errorf("%s: field mismatch\n batch %+v\n watch %+v", b.NS, *b, *w)
			continue
		}
		if len(b.Domains) != len(w.Domains) {
			t.Errorf("%s: %d affected domains in batch, %d in watch", b.NS, len(b.Domains), len(w.Domains))
			continue
		}
		for j := range b.Domains {
			bd, wd := b.Domains[j], w.Domains[j]
			if bd.Name != wd.Name || bd.Spans.String() != wd.Spans.String() {
				t.Errorf("%s: domain %d: batch %s %s, watch %s %s",
					b.NS, j, bd.Name, bd.Spans, wd.Name, wd.Spans)
			}
		}
	}
}

// TestReplayEquivalence replays the full simulated history through the
// incremental engine and demands the exact batch Detector output: same
// funnel, same sacrificial records, same per-domain delegation spans.
func TestReplayEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w, v, idx := buildWorld(t, 2, seed)
			batch := (&detect.Detector{DB: w.ZoneDB(), WHOIS: w.WHOIS(), Dir: w.Directory(),
				Cfg: detect.Config{SkipMining: true}}).Run()

			e := New(w.WHOIS(), w.Directory())
			alerts := replay(t, e, idx, idx.First(), idx.Last())
			if e.LastDay() != v.CloseDay() {
				t.Fatalf("engine at %s, close day %s", e.LastDay(), v.CloseDay())
			}
			diffResults(t, batch, e.Result())

			// Alert-stream bookkeeping must reconcile with the funnel.
			counts := map[string]int{}
			for _, a := range alerts {
				counts[a.Type]++
			}
			if got := counts[AlertSacrificial] - counts[AlertRetracted]; got != e.Funnel().Sacrificial {
				t.Errorf("alerts: %d sacrificial - %d retracted = %d, funnel says %d",
					counts[AlertSacrificial], counts[AlertRetracted], got, e.Funnel().Sacrificial)
			}
			hijacked := 0
			for _, s := range batch.Sacrificial {
				if s.Hijacked() {
					hijacked++
				}
			}
			if counts[AlertHijacked] != hijacked {
				t.Errorf("alerts: %d hijacked, batch found %d", counts[AlertHijacked], hijacked)
			}
			if seed == 1 && hijacked == 0 {
				t.Error("expected at least one hijack at scale 2 seed 1")
			}
		})
	}
}

// TestCheckpointRestoreMidHistory kills the engine mid-replay, restores
// it from its checkpoint, finishes the replay, and demands (a) the same
// final result as an uninterrupted run and (b) a byte-identical alert
// stream across the cut — no loss, no duplication, no seq gap.
func TestCheckpointRestoreMidHistory(t *testing.T) {
	w, _, idx := buildWorld(t, 2, 1)

	full := New(w.WHOIS(), w.Directory())
	fullAlerts := replay(t, full, idx, idx.First(), idx.Last())

	mid := idx.First() + (idx.Last()-idx.First())/2
	e1 := New(w.WHOIS(), w.Directory())
	part1 := replay(t, e1, idx, idx.First(), mid)

	var buf bytes.Buffer
	if err := e1.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	e1 = nil // the first engine is dead; only its checkpoint survives

	e2, err := Restore(bytes.NewReader(buf.Bytes()), w.WHOIS(), w.Directory())
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if e2.LastDay() != mid {
		t.Fatalf("restored engine at %s, want %s", e2.LastDay(), mid)
	}
	// Replaying an already-applied day must be refused, not double-counted.
	if _, err := e2.ApplyDay(idx.Day(mid)); err == nil {
		t.Fatal("ApplyDay(mid) after restore: want ErrStale, got nil")
	}
	part2 := replay(t, e2, idx, mid+1, idx.Last())

	combined := append(append([]Alert{}, part1...), part2...)
	if len(combined) != len(fullAlerts) {
		t.Fatalf("alert count: split %d, uninterrupted %d", len(combined), len(fullAlerts))
	}
	for i := range combined {
		if combined[i] != fullAlerts[i] {
			t.Fatalf("alert %d diverges:\n split %+v\n full  %+v", i, combined[i], fullAlerts[i])
		}
	}
	diffResults(t, full.Result(), e2.Result())

	// A second checkpoint cycle at the very end must also round-trip.
	buf.Reset()
	if err := e2.Save(&buf); err != nil {
		t.Fatalf("Save(final): %v", err)
	}
	e3, err := Restore(bytes.NewReader(buf.Bytes()), w.WHOIS(), w.Directory())
	if err != nil {
		t.Fatalf("Restore(final): %v", err)
	}
	diffResults(t, full.Result(), e3.Result())
	if e3.Seq() != full.Seq() {
		t.Errorf("restored seq %d, uninterrupted %d", e3.Seq(), full.Seq())
	}
}
