package watch

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/dates"
	"repro/internal/detect"
	"repro/internal/dnsname"
	"repro/internal/idioms"
	"repro/internal/interval"
	"repro/internal/registry"
	"repro/internal/whois"
)

// checkpointVersion guards the serialized layout. Bump on any change to
// Checkpoint or nsState JSON shapes.
const checkpointVersion = 1

// Checkpoint is the engine's complete serialized state: applying the
// same delta stream to a restored engine continues exactly where the
// saved one stopped, with the alert sequence intact. Everything is
// sorted before encoding so the same engine state always produces the
// same bytes (restartable daemons can diff checkpoints in tests).
//
// The registration-watch index is deliberately absent: it is derivable
// (every still-standing hijackable, collision-free sacrificial name
// whose registrable domain has not yet been registered is watching) and
// rebuilding it on restore keeps the format smaller and harder to
// corrupt.
type Checkpoint struct {
	Version int           `json:"version"`
	LastDay dates.Day     `json:"last_day"`
	Seq     uint64        `json:"seq"`
	Funnel  detect.Funnel `json:"funnel"`

	Glue    []dnsname.Name `json:"glue,omitempty"`
	Domains []dnsname.Name `json:"domains,omitempty"`
	Edges   []edgeRec      `json:"edges,omitempty"`
	Seen    []seenRec      `json:"seen,omitempty"`
	Cands   []*nsState     `json:"candidates,omitempty"`
}

// edgeRec is one active delegation.
type edgeRec struct {
	Domain dnsname.Name `json:"domain"`
	NS     dnsname.Name `json:"ns"`
}

// seenRec records a nameserver's first appearance.
type seenRec struct {
	NS    dnsname.Name `json:"ns"`
	First dates.Day    `json:"first"`
}

// Checkpoint captures the engine's current state. The engine remains
// usable; the snapshot shares no mutable structures with it (interval
// sets are cloned).
func (e *Engine) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Version: checkpointVersion,
		LastDay: e.last,
		Seq:     e.seq,
		Funnel:  e.funnel,
	}
	cp.Glue = sortedNames(e.glue)
	cp.Domains = sortedNames(e.doms)
	for dom, set := range e.active {
		for ns := range set {
			cp.Edges = append(cp.Edges, edgeRec{Domain: dom, NS: ns})
		}
	}
	sort.Slice(cp.Edges, func(i, j int) bool {
		if cp.Edges[i].Domain != cp.Edges[j].Domain {
			return cp.Edges[i].Domain < cp.Edges[j].Domain
		}
		return cp.Edges[i].NS < cp.Edges[j].NS
	})
	for ns, first := range e.seen {
		cp.Seen = append(cp.Seen, seenRec{NS: ns, First: first})
	}
	sort.Slice(cp.Seen, func(i, j int) bool { return cp.Seen[i].NS < cp.Seen[j].NS })
	for _, st := range e.cand {
		cp.Cands = append(cp.Cands, st.clone())
	}
	sort.Slice(cp.Cands, func(i, j int) bool { return cp.Cands[i].NS < cp.Cands[j].NS })
	return cp
}

// Save writes the checkpoint as indented JSON.
func (cp *Checkpoint) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(cp)
}

// Save is shorthand for Checkpoint().Save(w).
func (e *Engine) Save(w io.Writer) error { return e.Checkpoint().Save(w) }

// Restore rebuilds an engine from a saved checkpoint, wiring the same
// side inputs New takes. The registration-watch index is reconstructed
// from the candidate records.
func Restore(r io.Reader, wh *whois.History, dir *registry.Directory) (*Engine, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("watch: decoding checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("watch: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	e := New(wh, dir)
	e.last = cp.LastDay
	e.seq = cp.Seq
	e.funnel = cp.Funnel
	for _, h := range cp.Glue {
		e.glue[h] = true
	}
	for _, d := range cp.Domains {
		e.doms[d] = true
	}
	for _, ed := range cp.Edges {
		set := e.active[ed.Domain]
		if set == nil {
			set = make(map[dnsname.Name]bool)
			e.active[ed.Domain] = set
		}
		set[ed.NS] = true
	}
	for _, s := range cp.Seen {
		e.seen[s.NS] = s.First
	}
	for _, st := range cp.Cands {
		e.cand[st.NS] = st
		if st.Phase == phaseSacrificial && st.Class == idioms.Hijackable &&
			!st.Collision && st.RegDomain != "" && st.HijackedOn == dates.None {
			e.regWatch[st.RegDomain] = append(e.regWatch[st.RegDomain], st.NS)
		}
	}
	return e, nil
}

// clone deep-copies the candidate state for the snapshot.
func (st *nsState) clone() *nsState {
	out := *st
	if st.Operators != nil {
		out.Operators = make(map[string]bool, len(st.Operators))
		for k, v := range st.Operators {
			out.Operators[k] = v
		}
	}
	if st.Domains != nil {
		out.Domains = make(map[dnsname.Name]*interval.Set, len(st.Domains))
		for k, v := range st.Domains {
			c := v.Clone()
			out.Domains[k] = &c
		}
	}
	if st.Open != nil {
		out.Open = make(map[dnsname.Name]dates.Day, len(st.Open))
		for k, v := range st.Open {
			out.Open[k] = v
		}
	}
	return &out
}

func sortedNames(m map[dnsname.Name]bool) []dnsname.Name {
	if len(m) == 0 {
		return nil
	}
	out := make([]dnsname.Name, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
