package watch

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/dates"
	"repro/internal/dzdbapi"
	"repro/internal/faults"
)

// flaky wraps a handler, failing every third request with a 503 — the
// client's retry policy must absorb them without the follower losing or
// duplicating a single alert.
func flaky(next http.Handler, failures *atomic.Int64) http.Handler {
	var n atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%3 == 0 {
			failures.Add(1)
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// TestFollowerFaultInjection is the daemon acceptance criterion at the
// library layer: a follower tailing a feed that keeps throwing transient
// faults produces the exact alert stream of a direct in-process replay.
func TestFollowerFaultInjection(t *testing.T) {
	w, _, idx := buildWorld(t, 1, 1)

	direct := New(w.WHOIS(), w.Directory())
	want := replay(t, direct, idx, idx.First(), idx.Last())

	var failures atomic.Int64
	ts := httptest.NewServer(flaky(dzdbapi.New(w.ZoneDB()), &failures))
	t.Cleanup(ts.Close)

	e := New(w.WHOIS(), w.Directory())
	var got []Alert
	f := &Follower{
		Client: &dzdbapi.Client{
			BaseURL: ts.URL,
			Retry:   &faults.Policy{MaxAttempts: 6, BaseDelay: -1},
		},
		Engine:   e,
		OnAlert:  func(a Alert) { got = append(got, a) },
		PageSize: 200, // force many pages so faults land mid-walk
		Once:     true,
	}
	if err := f.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if failures.Load() == 0 {
		t.Fatal("fault injection never fired")
	}
	if e.LastDay() != idx.Last() {
		t.Fatalf("follower stopped at %s, feed closes %s", e.LastDay(), idx.Last())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("alert streams diverge: followed %d alerts, direct %d", len(got), len(want))
	}
	diffResults(t, direct.Result(), e.Result())
}

// TestFollowerResume kills a follower mid-stream (context cancel) and
// resumes with a fresh one over the same engine: the combined alert
// stream must equal an uninterrupted run — no loss, no duplicates.
func TestFollowerResume(t *testing.T) {
	w, _, idx := buildWorld(t, 1, 2)

	direct := New(w.WHOIS(), w.Directory())
	want := replay(t, direct, idx, idx.First(), idx.Last())

	ts := httptest.NewServer(dzdbapi.New(w.ZoneDB()))
	t.Cleanup(ts.Close)
	client := &dzdbapi.Client{BaseURL: ts.URL}

	e := New(w.WHOIS(), w.Directory())
	var got []Alert
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	applied := 0
	first := &Follower{
		Client:   client,
		Engine:   e,
		OnAlert:  func(a Alert) { got = append(got, a) },
		PageSize: 100,
		OnApplied: func(_, _ dates.Day, _ int) {
			if applied++; applied == 500 {
				cancel() // die mid-history
			}
		},
		Once: true,
	}
	if err := first.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted Run = %v, want context.Canceled", err)
	}
	if e.LastDay() >= idx.Last() {
		t.Fatal("follower was not actually interrupted mid-history")
	}

	second := &Follower{Client: client, Engine: e,
		OnAlert: func(a Alert) { got = append(got, a) },
		Once:    true,
	}
	if err := second.Run(context.Background()); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if e.LastDay() != idx.Last() {
		t.Fatalf("resume stopped at %s, feed closes %s", e.LastDay(), idx.Last())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("combined stream diverges: got %d alerts, want %d", len(got), len(want))
	}
	diffResults(t, direct.Result(), e.Result())
}
