package sim

import (
	"repro/internal/dates"
	"repro/internal/dnsname"
	"repro/internal/epp"
	"repro/internal/idioms"
	"repro/internal/registry"
)

// remediationTick applies the post-notification cleanup (§7.1):
//
//   - GoDaddy, in monthly batches, re-delegates domains it sponsors away
//     from its old hijackable sacrificial names to fresh
//     empty.as112.arpa names (the dominant remediation the paper
//     measured: ~60% of remediated domains).
//   - MarkMonitor repairs the brand-protection domains it sponsors.
//
// Idiom switches themselves (Table 6) are part of the registrars' phase
// schedules and need no tick.
func (w *World) remediationTick(day dates.Day) error {
	for _, offset := range []int{30, 60, 90, 120} {
		if day == remediationIdiomSwitch.Add(offset) {
			if err := w.godaddyRemediationBatch(day); err != nil {
				return err
			}
		}
	}
	if day == remediationIdiomSwitch.Add(20) {
		if err := w.markMonitorCleanup(day); err != nil {
			return err
		}
	}
	if day == remediationIdiomSwitch.Add(45) {
		if err := w.cooperatingRegistrarCleanup(day); err != nil {
			return err
		}
	}
	return nil
}

// cooperatingRegistrarCleanup models the long tail of §7.1: at least a
// dozen additional registrars pulled the collated per-registrar lists
// from the DNS Abuse Working Group and repaired a share of the affected
// domains they sponsor.
func (w *World) cooperatingRegistrarCleanup(day dates.Day) error {
	cooperating := map[epp.RegistrarID]bool{
		rrTucows: true, rrNameSilo: true, rrNetSol: true, rrRegisterCom: true,
	}
	for _, e := range w.danglingOrder {
		if e.registered {
			continue
		}
		repo := e.reg.Repository()
		for _, ns := range e.ns {
			for _, victim := range repo.LinkedDomains(ns) {
				d, err := repo.DomainInfo(victim)
				if err != nil || !cooperating[d.Sponsor] {
					continue
				}
				if w.rng.Float64() > 0.6 {
					continue // partial uptake
				}
				def := w.defaultNS[d.Sponsor]
				ok := true
				for _, h := range def {
					if err := w.ensureHost(e.reg, d.Sponsor, h, day); err != nil {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				if err := e.reg.SetNS(d.Sponsor, victim, day, def...); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// godaddyRemediationBatch re-delegates GoDaddy-sponsored domains away
// from every hijackable sacrificial name GoDaddy ever created. The batch
// is idempotent: later batches only touch stragglers.
func (w *World) godaddyRemediationBatch(day dates.Day) error {
	rr := w.registrars[rrGoDaddy]
	perRegistry := make(map[*registry.Registry][]dnsname.Name)
	for _, rn := range w.truth.Renames {
		if rn.Registrar != "GoDaddy" || rn.Accident {
			continue
		}
		id := idioms.Lookup(rn.Idiom)
		if id == nil || id.Class != idioms.Hijackable {
			continue
		}
		for _, reg := range w.registries {
			if reg.Repository().HostExists(rn.New) {
				perRegistry[reg] = append(perRegistry[reg], rn.New)
				break
			}
		}
	}
	for _, reg := range w.registries { // deterministic order
		names := perRegistry[reg]
		if len(names) == 0 {
			continue
		}
		if _, err := rr.RemediateDelegations(reg, names, day); err != nil {
			return err
		}
	}
	return nil
}

// markMonitorCleanup re-delegates MarkMonitor-sponsored domains that
// point at dangling sacrificial nameservers to MarkMonitor's own
// infrastructure.
func (w *World) markMonitorCleanup(day dates.Day) error {
	def := w.defaultNS[rrMarkMonitor]
	for _, e := range w.danglingOrder {
		repo := e.reg.Repository()
		for _, ns := range e.ns {
			for _, victim := range repo.LinkedDomains(ns) {
				d, err := repo.DomainInfo(victim)
				if err != nil || d.Sponsor != rrMarkMonitor {
					continue
				}
				ok := true
				for _, h := range def {
					if err := w.ensureHost(e.reg, rrMarkMonitor, h, day); err != nil {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				if err := e.reg.SetNS(rrMarkMonitor, victim, day, def...); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
