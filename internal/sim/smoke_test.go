package sim

import (
	"testing"

	"repro/internal/detect"
	"repro/internal/idioms"
)

// TestSmokeEndToEnd runs a small world through the full pipeline and
// reports the funnel, as an early calibration harness.
func TestSmokeEndToEnd(t *testing.T) {
	cfg := DefaultConfig(6)
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tr := w.Truth()
	t.Logf("domains ever: %d, nameservers ever: %d", w.ZoneDB().NumDomains(), w.ZoneDB().NumNameservers())
	t.Logf("truth renames: %d (hijackable NS: %d), hijacks: %d, testNS: %d, accidentNS: %d",
		len(tr.Renames), len(tr.HijackableSet()), len(tr.Hijacks), len(tr.TestNS), len(tr.AccidentNS))

	det := &detect.Detector{DB: w.ZoneDB(), WHOIS: w.WHOIS(), Dir: w.Directory()}
	res := det.Run()
	t.Logf("funnel: %+v", res.Funnel)
	perIdiom := map[idioms.ID]int{}
	hijacked := 0
	for i := range res.Sacrificial {
		s := &res.Sacrificial[i]
		perIdiom[s.Idiom]++
		if s.Hijacked() {
			hijacked++
		}
	}
	t.Logf("per idiom: %v", perIdiom)
	t.Logf("hijacked NS detected: %d", hijacked)
	if len(res.Patterns) > 0 {
		n := len(res.Patterns)
		if n > 12 {
			n = 12
		}
		t.Logf("top patterns: %v", res.Patterns[:n])
	}
}
