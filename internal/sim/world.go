package sim

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"

	"repro/internal/dates"
	"repro/internal/dnsname"
	"repro/internal/epp"
	"repro/internal/hijacker"
	"repro/internal/idioms"
	"repro/internal/registrar"
	"repro/internal/registry"
	"repro/internal/whois"
	"repro/internal/zonedb"
)

// domainKind classifies simulated registrations.
type domainKind int

const (
	kindRegular domainKind = iota
	kindProvider
	kindBrandAlt
	kindHijack
	kindInfra
	kindSink
	kindTest
)

// domainState is the simulator's view of one live registration.
type domainState struct {
	name      dnsname.Name
	registrar epp.RegistrarID
	reg       *registry.Registry
	created   dates.Day
	expiry    dates.Day
	termYears int
	termsLeft int
	kind      domainKind
	provider  *provider
	actor     *hijacker.Actor
	hijackIdx int
	popular   bool
}

// provider is a self-hosted domain whose nameservers other domains use.
type provider struct {
	domain dnsname.Name
	hosts  []dnsname.Name
	reg    *registry.Registry
	weight float64
	dead   bool
}

// danglingEntry tracks a hijackable sacrificial nameserver domain: the
// registrable domain an attacker could register, and the sacrificial NS
// names under it.
type danglingEntry struct {
	regDomain  dnsname.Name
	ns         []dnsname.Name
	reg        *registry.Registry // repository holding the host objects
	created    dates.Day
	registered bool
}

// fixAction is a scheduled victim reaction: re-delegate domain to the
// given hosts (or, when hosts is empty, to its registrar's defaults).
type fixAction struct {
	domain dnsname.Name
	hosts  []dnsname.Name
}

// World is a fully wired simulation. Create with NewWorld, then Run.
type World struct {
	cfg Config
	rng *rand.Rand
	gen *nameGen

	registries []*registry.Registry
	dir        *registry.Directory
	zdb        *zonedb.DB
	who        *whois.History

	registrars map[epp.RegistrarID]*registrar.Registrar
	market     []marketEntry
	defaultNS  map[epp.RegistrarID][]dnsname.Name
	hostBias   map[epp.RegistrarID]float64
	actors     []*hijacker.Actor

	domains   map[dnsname.Name]*domainState
	expiries  map[dates.Day][]dnsname.Name
	fixes     map[dates.Day][]fixAction
	providers []*provider
	provTotal float64

	// dangling is keyed by the registrable domain of sacrificial names;
	// danglingOrder preserves creation order for deterministic scans.
	dangling      map[dnsname.Name]*danglingEntry
	danglingOrder []*danglingEntry

	accidentHosts    []dnsname.Name
	accidentAffected []dnsname.Name
	accidentSeen     map[dnsname.Name]bool

	// typoPool holds common misspellings reused across registrants.
	typoPool []dnsname.Name

	// popular records every domain flagged popular, including expired
	// ones (the domainState is deleted at retirement).
	popular map[dnsname.Name]bool

	truth Truth
}

type marketEntry struct {
	id     epp.RegistrarID
	weight float64
}

// Registrar EPP account IDs.
const (
	rrGoDaddy      epp.RegistrarID = "godaddy"
	rrEnom         epp.RegistrarID = "enom"
	rrNetSol       epp.RegistrarID = "netsol"
	rrInternetBS   epp.RegistrarID = "internetbs"
	rrGMO          epp.RegistrarID = "gmo"
	rrXinNet       epp.RegistrarID = "xinnet"
	rrTLDRS        epp.RegistrarID = "tldrs"
	rrSRSPlus      epp.RegistrarID = "srsplus"
	rrDomainPeople epp.RegistrarID = "domainpeople"
	rrFabulous     epp.RegistrarID = "fabulous"
	rrRegisterCom  epp.RegistrarID = "registercom"
	rrTucows       epp.RegistrarID = "tucows"
	rrNameSilo     epp.RegistrarID = "namesilo"
	rrMarkMonitor  epp.RegistrarID = "markmonitor"
	rrWebFusion    epp.RegistrarID = "webfusion"
	rrEducause     epp.RegistrarID = "educause"
	rrCISA         epp.RegistrarID = "cisa"
	rrVrsnOps      epp.RegistrarID = "verisign-ops"
	rrDropCatch    epp.RegistrarID = "dropcatch"
)

// StandardDirectory returns the TLD-to-registry mapping the simulation
// uses, with no recorder attached. It is public knowledge (the IANA
// registry list), so tools that run detection over ARCHIVED zone data —
// where no simulation exists — construct it directly.
func StandardDirectory() *registry.Directory {
	return registry.NewDirectory(
		registry.New("Verisign", nil, "com", "net", "edu", "gov"),
		registry.New("Afilias", nil, "org", "info"),
		registry.New("Neustar", nil, "biz", "us"),
		registry.New("Donuts", nil, "xyz"),
	)
}

// NewWorld wires registries, registrars, sinks, infrastructure, and
// hijacker actors for the given configuration.
func NewWorld(cfg Config) (*World, error) {
	def := DefaultConfig(cfg.NewDomainsPerDay)
	if cfg.Start == 0 && cfg.End == 0 {
		cfg.Start, cfg.End = def.Start, def.End
	}
	if cfg.NewDomainsPerDay <= 0 {
		cfg.NewDomainsPerDay = 10
	}
	w := &World{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		zdb:        zonedb.New(),
		who:        whois.New(),
		registrars: make(map[epp.RegistrarID]*registrar.Registrar),
		defaultNS:  make(map[epp.RegistrarID][]dnsname.Name),
		domains:    make(map[dnsname.Name]*domainState),
		popular:    make(map[dnsname.Name]bool),
		expiries:   make(map[dates.Day][]dnsname.Name),
		fixes:      make(map[dates.Day][]fixAction),
		dangling:   make(map[dnsname.Name]*danglingEntry),
	}
	w.gen = newNameGen(rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)))

	// Registries: four EPP repositories. Verisign's backs the restricted
	// .edu and .gov TLDs alongside .com/.net — the scoping that lets a
	// .com rename rewrite a .gov delegation (§2.4, Figure 2).
	verisign := registry.New("Verisign", w.zdb, "com", "net", "edu", "gov")
	afilias := registry.New("Afilias", w.zdb, "org", "info")
	neustar := registry.New("Neustar", w.zdb, "biz", "us")
	donuts := registry.New("Donuts", w.zdb, "xyz")
	w.registries = []*registry.Registry{verisign, afilias, neustar, donuts}
	w.dir = registry.NewDirectory(w.registries...)

	w.setupRegistrars()
	if cfg.Hijackers {
		w.actors = hijacker.DefaultActors()
	}
	if err := w.setupInfrastructure(); err != nil {
		return nil, err
	}
	return w, nil
}

// rrSpec describes one registrar for setup.
type rrSpec struct {
	id       epp.RegistrarID
	name     string
	weight   float64 // market share of new registrations
	phases   []registrar.Phase
	hostBias float64 // multiplier on provider attractiveness
}

func (w *World) registrarSpecs() []rrSpec {
	start := w.cfg.Start
	rem := w.cfg.Remediation
	phase := func(from dates.Day, id idioms.ID) registrar.Phase {
		return registrar.Phase{From: from, Idiom: id}
	}
	godaddy := []registrar.Phase{phase(start, idioms.PleaseDropThisHost), phase(godaddyIdiomSwitch, idioms.DropThisHost)}
	enom := []registrar.Phase{phase(start, idioms.Enom123), phase(enomIdiomSwitch, idioms.EnomRandom)}
	ibs := []registrar.Phase{phase(start, idioms.DummyNS), phase(internetBSSwitch, idioms.DeletedDrop)}
	if rem {
		gdIdiom, enomIdiom, ibsIdiom := idioms.EmptyAS112, idioms.DeleteRegistrar, idioms.NotAPlaceToBe
		if w.cfg.UseInvalidTLD {
			// §7.3 counterfactual: all three adopt the reserved TLD.
			gdIdiom, enomIdiom, ibsIdiom = idioms.InvalidTLD, idioms.InvalidTLD, idioms.InvalidTLD
		}
		godaddy = append(godaddy, phase(remediationIdiomSwitch, gdIdiom))
		enom = append(enom, phase(remediationIdiomSwitch, enomIdiom))
		ibs = append(ibs, phase(remediationIdiomSwitch, ibsIdiom))
	}
	return []rrSpec{
		{rrGoDaddy, "GoDaddy", 0.26, godaddy, 1},
		{rrEnom, "Enom", 0.17, enom, 1},
		{rrNetSol, "Network Solutions", 0.07, []registrar.Phase{phase(start, idioms.LameDelegation)}, 3},
		{rrInternetBS, "Internet.bs", 0.055, ibs, 4},
		{rrGMO, "GMO Internet", 0.035, []registrar.Phase{phase(start, idioms.DeleteHost)}, 7},
		{rrXinNet, "Xin Net Technology Corp.", 0.03, []registrar.Phase{phase(start, idioms.DeletedNS)}, 8},
		{rrTLDRS, "TLD Registrar Solutions", 0.025, []registrar.Phase{phase(start, idioms.NSHoldFix)}, 2.5},
		{rrSRSPlus, "SRSPlus", 0.012, []registrar.Phase{phase(start, idioms.LameDelegationSrvs)}, 1},
		{rrDomainPeople, "DomainPeople", 0.012, []registrar.Phase{phase(start, idioms.DomainPeopleRandom)}, 1},
		{rrFabulous, "Fabulous.com", 0.01, []registrar.Phase{phase(start, idioms.FabulousRandom)}, 0.8},
		{rrRegisterCom, "Register.com", 0.015, []registrar.Phase{phase(start, idioms.RegisterComRandom)}, 0.8},
		// Registrars without (detectable) renaming practices.
		{rrTucows, "Tucows", 0.12, nil, 1},
		{rrNameSilo, "NameSilo", 0.10, nil, 1},
		{rrMarkMonitor, "MarkMonitor", 0.006, nil, 0.2},
		// webfusion uses an undetectable idiom (no marker, no original
		// substring) — exercising the §3.3 limitation.
		{rrWebFusion, "WebFusion", 0.02, nil, 1},
	}
}

func (w *World) setupRegistrars() {
	w.hostBias = make(map[epp.RegistrarID]float64)
	for _, spec := range w.registrarSpecs() {
		rng := rand.New(rand.NewSource(w.cfg.Seed ^ int64(hashID(spec.id))))
		w.registrars[spec.id] = registrar.New(spec.id, spec.name, rng, spec.phases...)
		w.market = append(w.market, marketEntry{spec.id, spec.weight})
		w.hostBias[spec.id] = spec.hostBias
	}
	// Registry-operated registration channels (no public market share).
	for _, extra := range []struct {
		id   epp.RegistrarID
		name string
	}{
		{rrEducause, "EDUCAUSE"}, {rrCISA, "CISA"}, {rrVrsnOps, "Verisign Ops"}, {rrDropCatch, "DropCatch LLC"},
	} {
		rng := rand.New(rand.NewSource(w.cfg.Seed ^ int64(hashID(extra.id))))
		w.registrars[extra.id] = registrar.New(extra.id, extra.name, rng)
	}
	// Hijacker registrar accounts.
	for _, id := range []epp.RegistrarID{"openprovider", "regru"} {
		rng := rand.New(rand.NewSource(w.cfg.Seed ^ int64(hashID(id))))
		w.registrars[id] = registrar.New(id, string(id), rng)
	}
}

func hashID(id epp.RegistrarID) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return h
}

// infraDomains maps registrars to their default-nameserver domains.
var infraDomains = map[epp.RegistrarID]dnsname.Name{
	rrGoDaddy:      "domaincontrol.com",
	rrEnom:         "name-services.com",
	rrNetSol:       "worldnic.com",
	rrInternetBS:   "topdns.com",
	rrGMO:          "onamae-server.com",
	rrXinNet:       "xincache.com",
	rrTLDRS:        "tldrsdns.com",
	rrSRSPlus:      "srsplusdns.com",
	rrDomainPeople: "dpdns.com",
	rrFabulous:     "fabulousdns.com",
	rrRegisterCom:  "registeradns.com",
	rrTucows:       "systemdns.com",
	rrNameSilo:     "dnsowl.com",
	rrMarkMonitor:  "markmonitordns.com",
	rrWebFusion:    "webfusiondns.com",
	rrEducause:     "educausedns.net",
	rrCISA:         "cisadns.net",
	rrVrsnOps:      "vrsnopsdns.com",
	rrDropCatch:    "dropcatchdns.com",
	"openprovider": "openproviderdns.com",
	"regru":        "regrudns.com",
}

// glueAddr fabricates a deterministic documentation-range address.
func (w *World) glueAddr() netip.Addr {
	return netip.AddrFrom4([4]byte{198, 51, byte(w.rng.Intn(250)), byte(1 + w.rng.Intn(250))})
}

// foreverTerms keeps infrastructure and sink registrations renewing for
// the whole run.
const foreverTerms = 1 << 20

// setupInfrastructure registers registrar default-NS domains, sink
// domains, and hijacker infrastructure that lives inside tracked TLDs.
func (w *World) setupInfrastructure() error {
	day := w.cfg.Start
	// Registrar default NS infrastructure.
	for id, infra := range infraDomains {
		reg := w.dir.RegistryFor(infra)
		if reg == nil {
			return fmt.Errorf("sim: no registry for infra domain %s", infra)
		}
		if err := w.registerInfra(reg, id, infra, day); err != nil {
			return err
		}
		ns1, ns2 := dnsname.Join("ns1", infra), dnsname.Join("ns2", infra)
		for _, h := range []dnsname.Name{ns1, ns2} {
			if err := reg.CreateHost(id, h, day, w.glueAddr()); err != nil {
				return err
			}
		}
		if err := reg.SetNS(id, infra, day, ns1, ns2); err != nil {
			return err
		}
		w.defaultNS[id] = []dnsname.Name{ns1, ns2}
	}
	// Sink domains for every sink-style idiom, registered by the idiom's
	// registrar, deliberately NOT delegated (lame by design).
	sinkOwners := map[dnsname.Name]epp.RegistrarID{
		"dummyns.com":               rrInternetBS,
		"lamedelegation.org":        rrNetSol,
		"nsholdfix.com":             rrTLDRS,
		"delete-host.com":           rrGMO,
		"deletedns.com":             rrXinNet,
		"lamedelegationservers.com": rrSRSPlus,
		"lamedelegationservers.net": rrSRSPlus,
		"delete-registration.com":   rrEnom,
	}
	for sink, owner := range sinkOwners {
		reg := w.dir.RegistryFor(sink)
		if reg == nil {
			continue // external sinks (.be, .arpa) need no registration
		}
		if err := w.registerSink(reg, owner, sink, day); err != nil {
			return err
		}
	}
	// Hijacker infrastructure domains inside tracked TLDs, so their NS
	// hosts can exist as internal objects with glue.
	if w.cfg.Hijackers {
		for _, a := range w.actors {
			seen := make(map[dnsname.Name]bool)
			for _, ns := range a.InfraNS {
				infra, ok := dnsname.RegisteredDomain(ns)
				if !ok || seen[infra] {
					continue
				}
				seen[infra] = true
				reg := w.dir.RegistryFor(infra)
				if reg == nil {
					continue // .nl, .ch etc. live outside tracked zones
				}
				if err := w.registerInfra(reg, a.Registrar, infra, day); err != nil {
					return err
				}
				if err := reg.CreateHost(a.Registrar, ns, day, w.glueAddr()); err != nil {
					return err
				}
				if err := reg.SetNS(a.Registrar, infra, day, ns); err != nil {
					return err
				}
			}
		}
	}
	// The Namecheap channel's shared default-nameserver domain.
	if w.cfg.Accident {
		if err := w.setupAccidentInfra(day); err != nil {
			return err
		}
	}
	return nil
}

func (w *World) registerInfra(reg *registry.Registry, owner epp.RegistrarID, name dnsname.Name, day dates.Day) error {
	expiry := day.AddYears(1)
	if err := reg.RegisterDomain(owner, name, day, expiry); err != nil {
		return err
	}
	w.who.Observe(name, day, w.registrarName(owner))
	w.domains[name] = &domainState{
		name: name, registrar: owner, reg: reg,
		created: day, expiry: expiry, termYears: 1, termsLeft: foreverTerms, kind: kindInfra,
	}
	w.scheduleExpiry(name, expiry)
	return nil
}

func (w *World) registerSink(reg *registry.Registry, owner epp.RegistrarID, name dnsname.Name, day dates.Day) error {
	if err := w.registerInfra(reg, owner, name, day); err != nil {
		return err
	}
	w.domains[name].kind = kindSink
	return nil
}

func (w *World) registrarName(id epp.RegistrarID) string {
	if rr := w.registrars[id]; rr != nil {
		return rr.Name()
	}
	return string(id)
}

func (w *World) scheduleExpiry(name dnsname.Name, day dates.Day) {
	w.expiries[day] = append(w.expiries[day], name)
}

// ZoneDB returns the longitudinal zone database (the detector's input).
func (w *World) ZoneDB() *zonedb.DB { return w.zdb }

// WHOIS returns the registrar-of-record history.
func (w *World) WHOIS() *whois.History { return w.who }

// Directory returns the TLD-to-registry directory (public knowledge).
func (w *World) Directory() *registry.Directory { return w.dir }

// Truth returns the ground-truth ledger for evaluation.
func (w *World) Truth() *Truth { return &w.truth }

// PopularDomains returns the set of domains flagged popular (the Alexa
// Top-1M stand-in). Includes domains that have since expired.
func (w *World) PopularDomains() map[dnsname.Name]bool {
	out := make(map[dnsname.Name]bool, len(w.popular))
	for d := range w.popular {
		out[d] = true
	}
	return out
}

// Config returns the configuration the world was built with.
func (w *World) Config() Config { return w.cfg }

// pickRegistrar samples a registrar by market share.
func (w *World) pickRegistrar() epp.RegistrarID {
	total := 0.0
	for _, m := range w.market {
		total += m.weight
	}
	r := w.rng.Float64() * total
	for _, m := range w.market {
		if r < m.weight {
			return m.id
		}
		r -= m.weight
	}
	return w.market[len(w.market)-1].id
}

// tldShare samples a TLD for a new registration. ngTLD .xyz only becomes
// available mid-2014.
func (w *World) pickTLD(day dates.Day) dnsname.Name {
	type share struct {
		tld dnsname.Name
		w   float64
	}
	shares := []share{
		{"com", 0.55}, {"net", 0.10}, {"org", 0.12}, {"info", 0.07},
		{"biz", 0.05}, {"us", 0.02},
	}
	if day >= dates.FromYMD(2014, 6, 1) {
		shares = append(shares, share{"xyz", 0.04})
	}
	total := 0.0
	for _, s := range shares {
		total += s.w
	}
	r := w.rng.Float64() * total
	for _, s := range shares {
		if r < s.w {
			return s.tld
		}
		r -= s.w
	}
	return "com"
}

// pickProvider samples a third-party nameservice provider by popularity
// weight, or nil when none exist yet.
func (w *World) pickProvider() *provider {
	if w.provTotal <= 0 {
		return nil
	}
	r := w.rng.Float64() * w.provTotal
	for _, p := range w.providers {
		if p.dead {
			continue
		}
		if r < p.weight {
			return p
		}
		r -= p.weight
	}
	return nil
}

func (w *World) addProvider(p *provider) {
	w.providers = append(w.providers, p)
	w.provTotal += p.weight
}

func (w *World) removeProvider(p *provider) {
	if !p.dead {
		p.dead = true
		w.provTotal -= p.weight
		if w.provTotal < 0 {
			w.provTotal = 0
		}
	}
}

// paretoWeight draws a heavy-tailed attractiveness weight.
func (w *World) paretoWeight(bias float64) float64 {
	u := w.rng.Float64()
	if u < 1e-6 {
		u = 1e-6
	}
	v := math.Pow(1/u, 1/1.25) // Pareto alpha ~ 1.25
	if v > 70 {
		v = 70
	}
	return v * bias
}
