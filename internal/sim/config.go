// Package sim drives a deterministic, multi-year simulation of the
// domain-registration ecosystem: registries with shared EPP repositories,
// registrars with their documented renaming idioms, domain owners with
// self-hosted / registrar-default / third-party nameservice, hijacker
// actors, the 2016 Namecheap accidental deletion, and the 2020-21
// notification and remediation campaign.
//
// The simulation replaces the paper's data gate (nine years of daily zone
// files from CAIDA-DZDB plus DomainTools WHOIS) by generating the same
// kinds of zone-visible facts through the same causal mechanisms. The
// detector consumes only the resulting zonedb.DB and whois.History — the
// simulator's ground truth (Truth) is used exclusively to evaluate the
// detector, never to inform it.
package sim

import (
	"repro/internal/dates"
)

// Config parameterizes a simulation run. Zero fields take defaults from
// DefaultConfig.
type Config struct {
	// Seed selects the deterministic random stream.
	Seed int64

	// Start and End bound the simulated days (inclusive). The defaults
	// run 2009-07-01 through 2021-09-30: a warmup before the paper's
	// observation window, the window itself (Apr 2011 - Sep 2020), and
	// the remediation epilogue through Sep 2021.
	Start dates.Day
	End   dates.Day

	// NewDomainsPerDay is the mean daily registration volume. It scales
	// every population in the run; tests use small values, the CLI a
	// larger one.
	NewDomainsPerDay float64

	// Hijackers enables the hijacker actors. Disabling them is the
	// ablation for Figure 5/6 comparisons.
	Hijackers bool

	// Accident enables the Namecheap accidental-deletion event (§4).
	Accident bool

	// Remediation enables the notification campaign effects (§7): idiom
	// switches, GoDaddy bulk re-delegation, and MarkMonitor cleanup.
	Remediation bool

	// UniformHijackers replaces degree-selective registration with a
	// uniform coin flip of equal overall volume — the selectivity
	// ablation.
	UniformHijackers bool

	// UseInvalidTLD makes the notified registrars adopt the §7.3
	// .invalid-TLD idiom at the remediation switch instead of their
	// historical sink choices — the reserved-label counterfactual.
	UseInvalidTLD bool

	// CascadeFixFrom, when set (non-zero and not dates.None), enables
	// the §7.3 EPP protocol change from that day: domain deletion
	// cascades to subordinate host references, so NO new sacrificial
	// nameservers are created after it. Zero disables the
	// counterfactual.
	CascadeFixFrom dates.Day
}

// DefaultConfig returns the standard full-scenario configuration at the
// given daily registration volume.
func DefaultConfig(domainsPerDay float64) Config {
	return Config{
		Seed:             1,
		Start:            dates.FromYMD(2007, 7, 1),
		End:              dates.FromYMD(2021, 9, 30),
		NewDomainsPerDay: domainsPerDay,
		Hijackers:        true,
		Accident:         true,
		Remediation:      true,
	}
}

// Milestone dates of the scenario, mirroring the paper's timeline.
var (
	// WindowStart / WindowEnd delimit the paper's measurement window.
	WindowStart = dates.FromYMD(2011, 4, 1)
	WindowEnd   = dates.FromYMD(2020, 9, 30)

	// godaddyIdiomSwitch is when GoDaddy moved from PLEASEDROPTHISHOST to
	// DROPTHISHOST.
	godaddyIdiomSwitch = dates.FromYMD(2015, 3, 1)

	// enomIdiomSwitch is when Enom moved from 123.BIZ to random names.
	enomIdiomSwitch = dates.FromYMD(2012, 5, 1)

	// internetBSSwitch is when Internet.bs (under CentralNIC) abandoned
	// DUMMYNS.COM for the hijackable DELETED-DROP idiom.
	internetBSSwitch = dates.FromYMD(2015, 6, 1)

	// dummynsDropCatch is when the abandoned dummyns.com sink was
	// drop-caught by an outside party (footnote 6).
	dummynsDropCatch = dates.FromYMD(2016, 8, 15)

	// accidentDay is the Namecheap registrar-servers.com deletion.
	accidentDay = dates.FromYMD(2016, 7, 14)

	// NotificationDay is when the outreach campaign began (§7).
	NotificationDay = dates.FromYMD(2020, 9, 15)

	// remediationIdiomSwitch is when the three notified registrars
	// adopted protected idioms.
	remediationIdiomSwitch = dates.FromYMD(2020, 10, 15)

	// FollowupDay is the five-months-later measurement point of Table 5.
	FollowupDay = dates.FromYMD(2021, 2, 15)
)
