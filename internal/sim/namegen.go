package sim

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dnsname"
)

// nameGen produces unique, pronounceable second-level labels so that the
// original-nameserver substring matching of §3.2.3 operates on realistic
// material (distinct word-like labels rather than sequential IDs).
type nameGen struct {
	rng  *rand.Rand
	used map[string]bool
	seq  int
}

func newNameGen(rng *rand.Rand) *nameGen {
	return &nameGen{rng: rng, used: make(map[string]bool)}
}

var (
	onsets  = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "br", "cl", "dr", "gr", "pl", "st", "tr", "sh", "ch"}
	vowels  = []string{"a", "e", "i", "o", "u", "ai", "ea", "io", "ou"}
	endings = []string{"", "", "", "n", "r", "s", "x", "l", "m"}
	themes  = []string{"", "", "", "", "net", "web", "host", "media", "tech", "shop", "data", "cloud", "info", "hub"}
)

// label generates a fresh pronounceable label, guaranteed unique across
// the generator's lifetime.
func (g *nameGen) label() string {
	for attempt := 0; ; attempt++ {
		var sb strings.Builder
		syllables := 2 + g.rng.Intn(2)
		for i := 0; i < syllables; i++ {
			sb.WriteString(onsets[g.rng.Intn(len(onsets))])
			sb.WriteString(vowels[g.rng.Intn(len(vowels))])
		}
		sb.WriteString(endings[g.rng.Intn(len(endings))])
		sb.WriteString(themes[g.rng.Intn(len(themes))])
		s := sb.String()
		if attempt > 20 {
			g.seq++
			s = fmt.Sprintf("%s%d", s, g.seq)
		}
		if !g.used[s] {
			g.used[s] = true
			return s
		}
	}
}

// domain generates a fresh registrable domain under tld.
func (g *nameGen) domain(tld dnsname.Name) dnsname.Name {
	return dnsname.Join(g.label(), tld)
}

// typo mangles a nameserver name into a plausible misconfiguration: a
// dropped or doubled letter in the second-level label. The result refers
// to a (almost certainly) nonexistent domain.
func (g *nameGen) typo(ns dnsname.Name) dnsname.Name {
	sld, ok := dnsname.SecondLevelLabel(ns)
	if !ok || len(sld) < 3 {
		return dnsname.Join("ns1", dnsname.Join(g.label(), "com"))
	}
	i := 1 + g.rng.Intn(len(sld)-2)
	var mangled string
	if g.rng.Intn(2) == 0 {
		mangled = sld[:i] + sld[i+1:] // drop a letter
	} else {
		mangled = sld[:i] + sld[i:i+1] + sld[i:] // double a letter
	}
	reg, _ := dnsname.RegisteredDomain(ns)
	return dnsname.Canonical(ns.FirstLabel() + "." + mangled + "." + string(reg.TLD()))
}
