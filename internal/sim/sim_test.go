package sim

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/dates"
	"repro/internal/dnsname"
	"repro/internal/idioms"
)

// sharedWorld runs one moderate simulation reused by read-only tests.
var (
	sharedOnce  sync.Once
	sharedW     *World
	sharedErr   error
	sharedScale = 5.0
)

func shared(t *testing.T) *World {
	t.Helper()
	sharedOnce.Do(func() {
		cfg := DefaultConfig(sharedScale)
		sharedW, sharedErr = NewWorld(cfg)
		if sharedErr == nil {
			sharedErr = sharedW.Run()
		}
	})
	if sharedErr != nil {
		t.Fatalf("shared world: %v", sharedErr)
	}
	return sharedW
}

func TestDeterminism(t *testing.T) {
	run := func() *Truth {
		cfg := DefaultConfig(3)
		cfg.End = dates.FromYMD(2013, 6, 30) // shortened run for speed
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w.Truth()
	}
	a, b := run(), run()
	if len(a.Renames) != len(b.Renames) || len(a.Hijacks) != len(b.Hijacks) || len(a.TestNS) != len(b.TestNS) {
		t.Fatalf("nondeterministic: %d/%d renames, %d/%d hijacks",
			len(a.Renames), len(b.Renames), len(a.Hijacks), len(b.Hijacks))
	}
	for i := range a.Renames {
		if a.Renames[i] != b.Renames[i] {
			t.Fatalf("rename %d differs: %+v vs %+v", i, a.Renames[i], b.Renames[i])
		}
	}
	for i := range a.Hijacks {
		if a.Hijacks[i] != b.Hijacks[i] {
			t.Fatalf("hijack %d differs", i)
		}
	}
}

func TestTruthConsistentWithZoneData(t *testing.T) {
	w := shared(t)
	db := w.ZoneDB()
	// A rename is invisible to daily zone files when every linked domain
	// was itself deleted later the same day (typically a brand-alt
	// expiring together with its provider). Tolerate a small fraction.
	invisible := 0
	for _, rn := range w.Truth().Renames {
		if db.NSFirstSeen(rn.New) == dates.None {
			invisible++
		}
		if rn.Linked <= 0 {
			t.Errorf("rename %s recorded with no linked domains", rn.New)
		}
	}
	if n := len(w.Truth().Renames); invisible > n/10 {
		t.Errorf("%d of %d renames never visible in zone data", invisible, n)
	}
	for _, hj := range w.Truth().Hijacks {
		first := db.DomainFirstSeen(hj.Domain)
		if first == dates.None {
			t.Errorf("hijack registration %s not visible in zone data", hj.Domain)
			continue
		}
		if first > hj.Day {
			t.Errorf("hijack %s: zone presence %s after registration %s", hj.Domain, first, hj.Day)
		}
	}
}

func TestRenamesArePlausibleIdioms(t *testing.T) {
	w := shared(t)
	for _, rn := range w.Truth().Renames {
		if rn.Idiom == "undetectable" {
			continue
		}
		id := idioms.Lookup(rn.Idiom)
		if id == nil {
			t.Errorf("rename with unknown idiom %q", rn.Idiom)
			continue
		}
		switch {
		case id.Sink != "":
			ok := rn.New.InZone(id.Sink)
			for _, alt := range id.AltSinks {
				ok = ok || rn.New.InZone(alt)
			}
			if !ok {
				t.Errorf("%s: sink rename %s outside sink", id.ID, rn.New)
			}
		case id.Marker != "":
			if !strings.Contains(string(rn.New), id.Marker) {
				t.Errorf("%s: marker missing in %s", id.ID, rn.New)
			}
		case id.OriginalBased:
			if !idioms.MatchesOriginal(rn.New, rn.Old) {
				t.Errorf("%s: %s does not match original %s", id.ID, rn.New, rn.Old)
			}
		}
	}
}

func TestHijackersAreSelective(t *testing.T) {
	w := shared(t)
	hijacks := w.Truth().Hijacks
	if len(hijacks) == 0 {
		t.Fatal("no hijacks at shared scale; calibration broken")
	}
	total := 0
	for _, hj := range hijacks {
		total += hj.Degree
	}
	if avg := float64(total) / float64(len(hijacks)); avg < 2 {
		t.Errorf("mean hijacked degree %.1f; selectivity looks broken", avg)
	}
}

func TestAccidentTimeline(t *testing.T) {
	w := shared(t)
	tr := w.Truth()
	if len(tr.AccidentNS) == 0 {
		t.Fatal("accident produced no sacrificial names")
	}
	db := w.ZoneDB()
	peak := map[dnsname.Name]bool{}
	after3 := map[dnsname.Name]bool{}
	for _, ns := range tr.AccidentNS {
		for _, e := range db.EdgesOf(ns) {
			spans := db.EdgeSpans(e.Domain, ns)
			if spans.Contains(accidentDay) {
				peak[e.Domain] = true
			}
			if spans.Contains(accidentDay.Add(3)) {
				after3[e.Domain] = true
			}
		}
	}
	if len(peak) == 0 {
		t.Fatal("no domains exposed by the accident")
	}
	frac := float64(len(after3)) / float64(len(peak))
	if frac > 0.15 {
		t.Errorf("%.0f%% still exposed after 3 days; recovery too slow", 100*frac)
	}
	// Accident names never enter the hijackable pool.
	for _, hj := range tr.Hijacks {
		for _, ns := range tr.AccidentNS {
			if reg, _ := dnsname.RegisteredDomain(ns); reg == hj.Domain {
				t.Errorf("accident name %s was hijacked", ns)
			}
		}
	}
}

func TestRestrictedTLDsExposed(t *testing.T) {
	// .edu/.gov domains must occasionally be rewritten by .com renames —
	// the Figure 2 scoping property.
	w := shared(t)
	db := w.ZoneDB()
	found := false
	for _, rn := range w.Truth().Renames {
		for _, e := range db.EdgesOf(rn.New) {
			tld := e.Domain.TLD()
			if tld == "edu" || tld == "gov" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no restricted-TLD domain was ever affected by a rename")
	}
}

func TestSinkDomainsStayRegistered(t *testing.T) {
	w := shared(t)
	db := w.ZoneDB()
	for _, sink := range []dnsname.Name{"lamedelegation.org", "delete-host.com", "deletedns.com"} {
		if !db.DomainRegisteredOn(sink, WindowEnd) {
			t.Errorf("sink %s not registered at window end", sink)
		}
	}
}

func TestDummynsDropCatch(t *testing.T) {
	w := shared(t)
	if len(w.Truth().SinkTransfers) != 1 || w.Truth().SinkTransfers[0] != "dummyns.com" {
		t.Fatalf("sink transfers = %v", w.Truth().SinkTransfers)
	}
	if got := w.WHOIS().RegistrarOn("dummyns.com", dates.FromYMD(2017, 1, 1)); got != "DropCatch LLC" {
		t.Errorf("dummyns.com registrar after drop-catch = %q", got)
	}
	if got := w.WHOIS().RegistrarOn("dummyns.com", dates.FromYMD(2014, 1, 1)); got != "Internet.bs" {
		t.Errorf("dummyns.com registrar before drop-catch = %q", got)
	}
}

func TestProtectedIdiomsOnlyAfterSwitch(t *testing.T) {
	w := shared(t)
	for _, rn := range w.Truth().Renames {
		id := idioms.Lookup(rn.Idiom)
		if id == nil {
			continue
		}
		if id.Class == idioms.Protected && rn.Day < remediationIdiomSwitch {
			t.Errorf("protected idiom %s used on %s, before the switch", rn.Idiom, rn.Day)
		}
		if id.Class != idioms.Protected && rn.Day > remediationIdiomSwitch.Add(5) {
			// Registrars that never switched may continue; only the three
			// notified ones must stop.
			switch rn.Registrar {
			case "GoDaddy", "Enom", "Internet.bs":
				t.Errorf("%s still used hijackable idiom %s on %s", rn.Registrar, rn.Idiom, rn.Day)
			}
		}
	}
}

func TestDisableFlags(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.End = dates.FromYMD(2017, 6, 30)
	cfg.Hijackers = false
	cfg.Accident = false
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	tr := w.Truth()
	if len(tr.Hijacks) != 0 {
		t.Errorf("hijacks with hijackers disabled: %d", len(tr.Hijacks))
	}
	if len(tr.AccidentNS) != 0 {
		t.Errorf("accident names with accident disabled: %d", len(tr.AccidentNS))
	}
}

func TestWhoisCoversRenamedProviders(t *testing.T) {
	// The detector depends on WHOIS knowing the registrar of the
	// ORIGINAL nameserver's domain the day before the rename.
	w := shared(t)
	missing := 0
	for _, rn := range w.Truth().Renames {
		if rn.Accident {
			continue
		}
		reg, ok := dnsname.RegisteredDomain(rn.Old)
		if !ok {
			continue
		}
		if w.WHOIS().RegistrarOn(reg, rn.Day-1) == "" {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d renames with no WHOIS history for the original domain", missing)
	}
}

func TestTruthSetHelpers(t *testing.T) {
	w := shared(t)
	tr := w.Truth()
	all := tr.SacrificialSet(true)
	hijackable := tr.HijackableSet()
	if len(hijackable) > len(all) {
		t.Error("hijackable set larger than sacrificial set")
	}
	for ns := range hijackable {
		if !all[ns] {
			t.Errorf("hijackable %s missing from sacrificial set", ns)
		}
	}
	withAccident := tr.SacrificialSet(false)
	if len(withAccident) != len(all)+len(tr.AccidentNS) {
		t.Errorf("accident exclusion arithmetic: %d vs %d + %d",
			len(withAccident), len(all), len(tr.AccidentNS))
	}
}
