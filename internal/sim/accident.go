package sim

import (
	"fmt"

	"repro/internal/dates"
	"repro/internal/dnsname"
)

// accidentDomain is Namecheap's shared default-nameserver domain, which
// an employee accidentally asked Enom to delete in July 2016 (§4).
var accidentDomain = dnsname.Name("registrar-servers.com")

// setupAccidentInfra registers the shared nameserver domain and its host
// fleet. It is also used to rebuild them during accident recovery.
func (w *World) setupAccidentInfra(day dates.Day) error {
	verisign := w.dir.RegistryFor(accidentDomain)
	if err := w.registerInfra(verisign, rrEnom, accidentDomain, day); err != nil {
		return err
	}
	k := int(w.cfg.NewDomainsPerDay)
	if k < 4 {
		k = 4
	}
	if k > 46 {
		k = 46
	}
	hosts := make([]dnsname.Name, 0, k)
	for i := 1; i <= k; i++ {
		h := dnsname.Join(fmt.Sprintf("ns%d", i), accidentDomain)
		if err := verisign.CreateHost(rrEnom, h, day, w.glueAddr()); err != nil {
			return err
		}
		hosts = append(hosts, h)
	}
	if err := verisign.SetNS(rrEnom, accidentDomain, day, hosts[0], hosts[1]); err != nil {
		return err
	}
	w.accidentHosts = hosts
	return nil
}

// namecheapChannel routes a share of Enom registrations through the
// shared registrar-servers.com nameservers (the Namecheap reseller
// channel).
func (w *World) namecheapChannel(st *domainState) ([]dnsname.Name, bool) {
	if !w.cfg.Accident || st.registrar != rrEnom || len(w.accidentHosts) < 2 {
		return nil, false
	}
	if w.rng.Float64() >= 0.35 {
		return nil, false
	}
	i := w.rng.Intn(len(w.accidentHosts))
	j := w.rng.Intn(len(w.accidentHosts) - 1)
	if j >= i {
		j++
	}
	return []dnsname.Name{w.accidentHosts[i], w.accidentHosts[j]}, true
}

// runAccident executes the accidental deletion: Enom's deletion machinery
// renames every subordinate host of registrar-servers.com (silently
// rewriting the delegations of every Namecheap-channel domain), deletes
// the domain — and then the recovery begins the same day.
func (w *World) runAccident(day dates.Day) error {
	verisign := w.dir.RegistryFor(accidentDomain)
	if w.domains[accidentDomain] == nil {
		return nil
	}
	rr := w.registrars[rrEnom]
	renames, err := rr.DeleteDomain(verisign, accidentDomain, day)
	if err != nil {
		return fmt.Errorf("accident: %w", err)
	}
	delete(w.domains, accidentDomain)
	for _, rn := range renames {
		w.noteRename(verisign, rn, rr.Name(), true)
	}
	// Recovery: Namecheap re-registers the domain and rebuilds the host
	// fleet immediately; victim re-delegations are scheduled over the
	// following days by scheduleAccidentRecoveryFix.
	return w.setupAccidentInfra(day)
}

// scheduleAccidentRecoveryFix schedules the rapid re-delegation the paper
// observed: the vast majority of affected domains fixed within three
// days, a few percent over the following year, and a residual never.
// Each victim delegates to two of the renamed hosts, so it appears under
// two sacrificial names; the fate draw must happen exactly once per
// victim or the late-fixing tail washes out.
func (w *World) scheduleAccidentRecoveryFix(sacrificialNS dnsname.Name) {
	verisign := w.dir.RegistryFor(accidentDomain)
	repo := verisign.Repository()
	if w.accidentSeen == nil {
		w.accidentSeen = make(map[dnsname.Name]bool)
	}
	for _, victim := range repo.LinkedDomains(sacrificialNS) {
		if w.domains[victim] == nil || w.accidentSeen[victim] {
			continue
		}
		w.accidentSeen[victim] = true
		w.accidentAffected = append(w.accidentAffected, victim)
		r := w.rng.Float64()
		var when dates.Day
		switch {
		case r < 0.97:
			when = accidentDay.Add(1 + w.rng.Intn(3))
		case r < 0.995:
			when = accidentDay.Add(30 + w.rng.Intn(300))
		default:
			// Never fixed (the paper's 51 stragglers, still delegated
			// four years later) — their owners keep renewing regardless.
			if st := w.domains[victim]; st != nil {
				st.termsLeft += 12
			}
			continue
		}
		// Restore to two of the rebuilt shared hosts.
		i := w.rng.Intn(2)
		hosts := []dnsname.Name{w.accidentHosts[i], w.accidentHosts[i+2]}
		w.fixes[when] = append(w.fixes[when], fixAction{domain: victim, hosts: hosts})
	}
}

// runDummynsDropCatch models footnote 6: after Internet.bs abandoned the
// DUMMYNS.COM sink, the domain changed hands and its new owner captures
// nameserver traffic for every domain still delegated under it.
func (w *World) runDummynsDropCatch(day dates.Day) error {
	sink := dnsname.Name("dummyns.com")
	st := w.domains[sink]
	if st == nil {
		return nil
	}
	verisign := w.dir.RegistryFor(sink)
	if err := verisign.Repository().TransferDomain(sink, rrDropCatch); err != nil {
		return err
	}
	w.who.Observe(sink, day, w.registrarName(rrDropCatch))
	st.registrar = rrDropCatch
	for _, h := range w.defaultNS[rrDropCatch] {
		if err := w.ensureHost(verisign, rrDropCatch, h, day); err != nil {
			return err
		}
	}
	if err := verisign.SetNS(rrDropCatch, sink, day, w.defaultNS[rrDropCatch]...); err != nil {
		return err
	}
	w.truth.SinkTransfers = append(w.truth.SinkTransfers, sink)
	return nil
}
