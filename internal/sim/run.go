package sim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dates"
	"repro/internal/dnsname"
	"repro/internal/epp"
	"repro/internal/hijacker"
	"repro/internal/idioms"
	"repro/internal/registrar"
	"repro/internal/registry"
)

// Run executes the simulation from Start through End and closes the zone
// database. It is deterministic for a given Config.
func (w *World) Run() error {
	for day := w.cfg.Start; day <= w.cfg.End; day++ {
		if err := w.step(day); err != nil {
			return fmt.Errorf("sim: day %s: %w", day, err)
		}
	}
	w.zdb.Close(w.cfg.End)
	return nil
}

// step advances the world one day.
func (w *World) step(day dates.Day) error {
	w.processFixes(day)
	if err := w.processExpiries(day); err != nil {
		return err
	}
	n := w.poisson(w.volume(day))
	for i := 0; i < n; i++ {
		if err := w.newDomain(day); err != nil {
			return err
		}
	}
	if int(day-w.cfg.Start)%14 == 3 {
		if err := w.createTestNS(day); err != nil {
			return err
		}
	}
	if w.cfg.Hijackers {
		if err := w.hijackerTick(day); err != nil {
			return err
		}
	}
	if w.cfg.Accident && day == accidentDay {
		if err := w.runAccident(day); err != nil {
			return err
		}
	}
	if w.cfg.Accident && day == dummynsDropCatch {
		if err := w.runDummynsDropCatch(day); err != nil {
			return err
		}
	}
	if w.cfg.Remediation {
		if err := w.remediationTick(day); err != nil {
			return err
		}
	}
	return nil
}

// volume returns the mean registration volume for the day: mild growth
// across the decade.
func (w *World) volume(day dates.Day) float64 {
	span := float64(w.cfg.End - w.cfg.Start)
	t := float64(day-w.cfg.Start) / span
	return w.cfg.NewDomainsPerDay * (0.95 + 0.1*t)
}

// poisson draws a Poisson variate (Knuth's method; lambda is small).
func (w *World) poisson(lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= w.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > int(lambda*10+50) {
			return k // numeric guard
		}
	}
}

// nsChoice is how a new registration arranges nameservice.
type nsChoice int

const (
	nsSelf nsChoice = iota
	nsDefault
	nsThird
)

// pickNSChoice reflects the decade's drift toward registrar-operated DNS
// (the driver of Figure 3's downward trend): self-hosting and third-party
// nameservice decline, registrar defaults grow.
func (w *World) pickNSChoice(day dates.Day, tld dnsname.Name) nsChoice {
	span := float64(w.cfg.End - w.cfg.Start)
	t := float64(day-w.cfg.Start) / span
	pSelf := 0.36 - 0.20*t
	decay := (1 - t) * (1 - t)
	pThird := 0.08 + 0.34*decay
	if tld == "edu" || tld == "gov" {
		pSelf, pThird = 0.55, 0.25
	}
	r := w.rng.Float64()
	switch {
	case r < pSelf:
		return nsSelf
	case r < pSelf+pThird:
		return nsThird
	default:
		return nsDefault
	}
}

// newDomain registers one domain with a full nameservice arrangement.
func (w *World) newDomain(day dates.Day) error {
	var rrID epp.RegistrarID
	var tld dnsname.Name
	switch r := w.rng.Float64(); {
	case r < 0.007:
		rrID, tld = rrEducause, "edu"
	case r < 0.012:
		rrID, tld = rrCISA, "gov"
	default:
		rrID = w.pickRegistrar()
		tld = w.pickTLD(day)
	}
	reg := w.dir.RegistryFor(dnsname.Join("x", tld))
	name := w.gen.domain(tld)
	for reg.Repository().DomainExists(name) {
		name = w.gen.domain(tld)
	}
	st := &domainState{
		name:      name,
		registrar: rrID,
		reg:       reg,
		created:   day,
		kind:      kindRegular,
		popular:   w.rng.Float64() < 0.004,
	}
	st.termYears = w.pickTerm()
	st.expiry = day.AddYears(st.termYears)
	st.termsLeft = w.pickTermsLeft(st)
	if st.popular {
		w.popular[name] = true
	}
	if err := reg.RegisterDomain(rrID, name, day, st.expiry); err != nil {
		return err
	}
	w.who.Observe(name, day, w.registrarName(rrID))
	w.domains[name] = st
	w.scheduleExpiry(name, st.expiry)

	hosts, err := w.delegate(st, day)
	if err != nil {
		return err
	}
	// Brand protection: occasionally the same label is registered in an
	// alternate TLD, parked on the same nameservers. These are the
	// MarkMonitor-style names of §5.6, and the source of accidental
	// PLEASEDROPTHISHOST collisions.
	if len(hosts) > 0 && w.rng.Float64() < 0.03 {
		if err := w.registerBrandAlt(st, hosts, day); err != nil {
			return err
		}
	}
	return nil
}

// pickTerm draws a registration term in years.
func (w *World) pickTerm() int {
	switch r := w.rng.Float64(); {
	case r < 0.72:
		return 1
	case r < 0.95:
		return 2
	default:
		return 5
	}
}

// pickTermsLeft draws how many renewals the owner will pay for.
func (w *World) pickTermsLeft(st *domainState) int {
	p := 0.45
	if st.popular {
		p = 0.85
	}
	n := 0
	for w.rng.Float64() < p && n < 30 {
		n++
	}
	return n
}

// delegate arranges nameservice for a fresh registration and returns the
// host names installed.
func (w *World) delegate(st *domainState, day dates.Day) ([]dnsname.Name, error) {
	repo := st.reg.Repository()
	var hosts []dnsname.Name
	switch w.pickNSChoice(day, st.name.TLD()) {
	case nsSelf:
		ns1, ns2 := dnsname.Join("ns1", st.name), dnsname.Join("ns2", st.name)
		for _, h := range []dnsname.Name{ns1, ns2} {
			if err := st.reg.CreateHost(st.registrar, h, day, w.glueAddr()); err != nil {
				return nil, err
			}
		}
		hosts = []dnsname.Name{ns1, ns2}
		// A minority of self-hosters offer nameservice to third parties;
		// keeping the pool small concentrates dependents on each
		// provider, giving sacrificial nameservers their heavy-tailed
		// domain counts.
		if w.rng.Float64() < 0.12 {
			p := &provider{
				domain: st.name,
				// Copy: the delegation slice may be mutated below (the
				// typo path), and the pool must keep the real host names.
				hosts:  append([]dnsname.Name(nil), hosts...),
				reg:    st.reg,
				weight: w.paretoWeight(w.hostBias[st.registrar]),
			}
			st.kind = kindProvider
			st.provider = p
			st.termsLeft += 1 + w.rng.Intn(3) // businesses live longer
			w.addProvider(p)
		}
	case nsThird:
		n := 1
		if w.rng.Float64() < 0.15 {
			n = 2 // dual-provider redundancy: the partial-hijack population
		}
		seen := make(map[*provider]bool)
		for i := 0; i < n; i++ {
			p := w.pickProvider()
			if p == nil || seen[p] {
				continue
			}
			seen[p] = true
			for _, h := range p.hosts {
				if err := w.ensureHost(st.reg, st.registrar, h, day); err != nil {
					return nil, err
				}
				hosts = append(hosts, h)
			}
		}
		if len(hosts) == 0 {
			hosts = nil // fall through to default below
		}
	}
	if len(hosts) == 0 { // nsDefault or no provider available
		def, ok := w.namecheapChannel(st)
		if !ok {
			def = w.defaultNS[st.registrar]
		}
		for _, h := range def {
			if err := w.ensureHost(st.reg, st.registrar, h, day); err != nil {
				return nil, err
			}
			hosts = append(hosts, h)
		}
	}
	// Rarely, a typo slips into the NS set: a candidate nameserver the
	// detector must NOT classify as sacrificial. Some typos are COMMON
	// misspellings shared by unrelated registrants across TLDs — the
	// population the single-repository check eliminates.
	if w.rng.Float64() < 0.004 && len(hosts) > 0 {
		var typo dnsname.Name
		if len(w.typoPool) > 0 && w.rng.Float64() < 0.4 {
			typo = w.typoPool[w.rng.Intn(len(w.typoPool))]
			if repo.Manages(typo) && !repo.HostExists(typo) {
				typo = "" // internal to this repository; unusable here
			}
		}
		if typo == "" {
			typo = w.foreignize(repo, w.gen.typo(hosts[len(hosts)-1]))
			if w.rng.Float64() < 0.5 && len(w.typoPool) < 64 {
				w.typoPool = append(w.typoPool, typo)
			}
		}
		if typo != "" && !repo.HostExists(typo) {
			if err := w.ensureHost(st.reg, st.registrar, typo, day); err == nil {
				hosts[len(hosts)-1] = typo
			}
		} else if typo != "" && repo.HostExists(typo) {
			hosts[len(hosts)-1] = typo
		}
	}
	if err := st.reg.SetNS(st.registrar, st.name, day, hosts...); err != nil {
		return nil, err
	}
	return hosts, nil
}

// foreignize flips a name's TLD out of the repository so it can exist as
// an external host object.
func (w *World) foreignize(repo *epp.Repository, name dnsname.Name) dnsname.Name {
	if !repo.Manages(name) {
		return name
	}
	for _, tld := range []dnsname.Name{"org", "com", "biz"} {
		if !repo.Manages(dnsname.Join("x", tld)) {
			base := name[:len(name)-len(name.TLD())-1]
			return dnsname.Canonical(string(base) + "." + string(tld))
		}
	}
	return name
}

// ensureHost makes sure a host object exists in the target registry's
// repository, creating an external host when the name is foreign to it.
func (w *World) ensureHost(reg *registry.Registry, sponsor epp.RegistrarID, host dnsname.Name, day dates.Day) error {
	repo := reg.Repository()
	if repo.HostExists(host) {
		return nil
	}
	if repo.Manages(host) {
		return fmt.Errorf("sim: internal host %s missing from repository %s (sponsor %s)", host, repo.ID(), sponsor)
	}
	return reg.CreateHost(sponsor, host, day)
}

// registerBrandAlt registers the same label under another TLD, parked on
// the primary's nameservers.
func (w *World) registerBrandAlt(primary *domainState, hosts []dnsname.Name, day dates.Day) error {
	label := primary.name.FirstLabel()
	tlds := []dnsname.Name{"com", "net", "org", "biz", "info"}
	var alt dnsname.Name
	for _, tld := range tlds {
		if tld == primary.name.TLD() {
			continue
		}
		cand := dnsname.Join(label, tld)
		if reg := w.dir.RegistryFor(cand); reg != nil && !reg.Repository().DomainExists(cand) {
			alt = cand
			break
		}
	}
	if alt == "" {
		return nil
	}
	reg := w.dir.RegistryFor(alt)
	rrID := primary.registrar
	if w.rng.Float64() < 0.5 {
		rrID = rrMarkMonitor
	}
	st := &domainState{
		name:      alt,
		registrar: rrID,
		reg:       reg,
		created:   day,
		kind:      kindBrandAlt,
		termYears: 1,
	}
	st.expiry = day.AddYears(1)
	st.termsLeft = w.pickTermsLeft(st)
	if err := reg.RegisterDomain(rrID, alt, day, st.expiry); err != nil {
		return err
	}
	w.who.Observe(alt, day, w.registrarName(rrID))
	w.domains[alt] = st
	w.scheduleExpiry(alt, st.expiry)
	repo := reg.Repository()
	usable := make([]dnsname.Name, 0, len(hosts))
	for _, h := range hosts {
		// A host internal to the alternate repository can only be used if
		// its object already exists there (e.g. a typo'd name cannot).
		if repo.Manages(h) && !repo.HostExists(h) {
			continue
		}
		if err := w.ensureHost(reg, rrID, h, day); err != nil {
			return err
		}
		usable = append(usable, h)
	}
	if len(usable) == 0 {
		for _, h := range w.defaultNS[rrID] {
			if err := w.ensureHost(reg, rrID, h, day); err != nil {
				return err
			}
			usable = append(usable, h)
		}
	}
	return reg.SetNS(rrID, alt, day, usable...)
}

// createTestNS provisions a short-lived registry test domain with
// EMT-prefixed nameservers (§3.2.2's excluded pattern).
func (w *World) createTestNS(day dates.Day) error {
	verisign := w.dir.RegistryFor("x.com")
	name := dnsname.Canonical(fmt.Sprintf("emt-t-%09d-%013d-2-u.com",
		w.rng.Intn(1_000_000_000), int64(w.rng.Intn(1_000_000_000))*10000+int64(w.rng.Intn(10000))))
	if verisign.Repository().DomainExists(name) {
		return nil
	}
	expiry := day.Add(7)
	if err := verisign.RegisterDomain(rrVrsnOps, name, day, expiry); err != nil {
		return err
	}
	w.who.Observe(name, day, w.registrarName(rrVrsnOps))
	st := &domainState{
		name: name, registrar: rrVrsnOps, reg: verisign,
		created: day, expiry: expiry, kind: kindTest,
	}
	w.domains[name] = st
	w.scheduleExpiry(name, expiry)
	hosts := []dnsname.Name{dnsname.Join("emt-ns1", name), dnsname.Join("emt-ns2", name)}
	for _, h := range hosts {
		if err := verisign.CreateHost(rrVrsnOps, h, day); err != nil {
			return err
		}
		w.truth.TestNS = append(w.truth.TestNS, h)
	}
	return verisign.SetNS(rrVrsnOps, name, day, hosts...)
}

// processExpiries handles every registration reaching its expiry date.
// Non-provider domains are processed before providers: a dependent that
// dies the same day as its provider must release its delegation first,
// so the provider's host is deleted rather than renamed into a
// sacrificial name no zone snapshot would ever show.
func (w *World) processExpiries(day dates.Day) error {
	scheduled := w.expiries[day]
	if len(scheduled) == 0 {
		return nil
	}
	delete(w.expiries, day)
	hasSubordinates := func(name dnsname.Name) bool {
		st := w.domains[name]
		return st != nil && len(st.reg.Repository().SubordinateHosts(name)) > 0
	}
	names := make([]dnsname.Name, 0, len(scheduled))
	for _, name := range scheduled {
		if !hasSubordinates(name) {
			names = append(names, name)
		}
	}
	for _, name := range scheduled {
		if hasSubordinates(name) {
			names = append(names, name)
		}
	}
	for _, name := range names {
		st := w.domains[name]
		if st == nil || st.expiry != day {
			continue // renewed, rescheduled, or already gone
		}
		if w.renews(st, day) {
			st.expiry = day.AddYears(st.termYears)
			if st.termYears == 0 {
				st.expiry = day.AddYears(1)
			}
			if err := st.reg.RenewDomain(st.registrar, name, st.expiry); err != nil {
				return err
			}
			w.scheduleExpiry(name, st.expiry)
			// Renewal is when owners revisit their setup: across the
			// decade an increasing share migrate to registrar-operated
			// DNS, draining the third-party dependency graph (the other
			// half of Figure 3's decline, and Table 5's organic churn).
			if st.kind == kindRegular {
				span := float64(w.cfg.End - w.cfg.Start)
				t := float64(day-w.cfg.Start) / span
				if w.rng.Float64() < 0.05+0.30*t {
					w.migrateToDefaultNS(st, day)
				}
			}
			continue
		}
		if err := w.retireDomain(st, day); err != nil {
			return err
		}
	}
	return nil
}

// migrateToDefaultNS re-delegates a domain to its registrar's default
// nameservers (best effort).
func (w *World) migrateToDefaultNS(st *domainState, day dates.Day) {
	def := w.defaultNS[st.registrar]
	if len(def) == 0 {
		return
	}
	for _, h := range def {
		if err := w.ensureHost(st.reg, st.registrar, h, day); err != nil {
			return
		}
	}
	_ = st.reg.SetNS(st.registrar, st.name, day, def...)
}

// renews decides whether the owner pays for another term.
func (w *World) renews(st *domainState, day dates.Day) bool {
	switch st.kind {
	case kindInfra, kindSink:
		return true
	case kindTest:
		return false
	case kindHijack:
		yearsHeld := (day.Sub(st.created) + 20) / 365
		return st.actor != nil && st.actor.Renews(yearsHeld, w.rng)
	default:
		if st.termsLeft > 0 {
			st.termsLeft--
			return true
		}
		return false
	}
}

// retireDomain runs the registrar deletion pipeline and processes its
// consequences: sacrificial renames, dangling tracking, victim fixes.
func (w *World) retireDomain(st *domainState, day dates.Day) error {
	rr := w.registrars[st.registrar]
	// §7.3 counterfactual: once the EPP cascade-delete change is in
	// effect, deletion needs no renames at all.
	if w.cfg.CascadeFixFrom != 0 && w.cfg.CascadeFixFrom != dates.None &&
		day >= w.cfg.CascadeFixFrom && st.kind != kindHijack {
		if err := st.reg.CascadeDeleteDomain(st.registrar, st.name, day); err != nil {
			return err
		}
		if st.provider != nil {
			w.removeProvider(st.provider)
		}
		delete(w.domains, st.name)
		return nil
	}
	renames, err := rr.DeleteDomain(st.reg, st.name, day)
	if err != nil {
		if errors.Is(err, registrar.ErrNoIdiom) {
			// Undeletable: subordinate hosts still referenced and the
			// registrar has no renaming practice. webfusion invents an
			// undetectable idiom on the spot (§3.3 limitation); everyone
			// else parks the name and retries later.
			if st.registrar == rrWebFusion {
				return w.retireWithUndetectableIdiom(st, day)
			}
			// The pipeline already deleted the unlinked subordinate
			// hosts, so the parked domain must stop attracting new
			// delegations.
			if st.provider != nil {
				w.removeProvider(st.provider)
			}
			st.expiry = day.Add(90)
			w.scheduleExpiry(st.name, st.expiry)
			return nil
		}
		return err
	}
	for _, rn := range renames {
		w.noteRename(st.reg, rn, rr.Name(), false)
	}
	if st.provider != nil {
		w.removeProvider(st.provider)
	}
	if st.kind == kindHijack {
		if e := w.dangling[st.name]; e != nil {
			e.registered = false
		}
		if st.hijackIdx >= 0 && st.hijackIdx < len(w.truth.Hijacks) {
			w.truth.Hijacks[st.hijackIdx].Expired = day
		}
	}
	delete(w.domains, st.name)
	return nil
}

// retireWithUndetectableIdiom renames linked subordinate hosts to fully
// random names that preserve nothing of the original — the renaming style
// the paper's methodology cannot attribute (§3.3).
func (w *World) retireWithUndetectableIdiom(st *domainState, day dates.Day) error {
	repo := st.reg.Repository()
	tld := dnsname.Name("biz")
	if repo.Manages(dnsname.Join("x", tld)) {
		tld = "com"
	}
	for _, h := range repo.SubordinateHosts(st.name) {
		oldName := h.Name // RenameHost mutates the host object
		if len(repo.LinkedDomains(oldName)) == 0 {
			if err := st.reg.DeleteHost(st.registrar, oldName, day); err != nil {
				return err
			}
			continue
		}
		var newName dnsname.Name
		for {
			newName = dnsname.Join(randLabel(w.rng, 14), tld)
			if !repo.HostExists(newName) {
				break
			}
		}
		if err := st.reg.RenameHost(st.registrar, oldName, newName, day); err != nil {
			return err
		}
		// Ground truth records it (it IS a sacrificial rename); the
		// detector is expected to miss it.
		w.truth.Renames = append(w.truth.Renames, RenameEvent{
			Old: oldName, New: newName, Idiom: "undetectable", Registrar: "WebFusion",
			Day: day, Linked: len(repo.LinkedDomains(newName)),
		})
		w.scheduleVictimFixes(st.reg, newName, day)
	}
	if err := st.reg.DeleteDomain(st.registrar, st.name, day); err != nil {
		return err
	}
	if st.provider != nil {
		w.removeProvider(st.provider)
	}
	delete(w.domains, st.name)
	return nil
}

func randLabel(rng interface{ Intn(int) int }, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// noteRename records ground truth for a sacrificial rename and, for
// hijackable idioms whose target domain is unregistered, tracks the
// dangling opportunity.
func (w *World) noteRename(reg *registry.Registry, rn registrar.Rename, rrName string, accident bool) {
	linked := len(reg.Repository().LinkedDomains(rn.New))
	w.truth.Renames = append(w.truth.Renames, RenameEvent{
		Old: rn.Old, New: rn.New, Idiom: rn.Idiom, Registrar: rrName,
		Day: rn.Day, Linked: linked, Accident: accident,
	})
	if accident {
		w.truth.AccidentNS = append(w.truth.AccidentNS, rn.New)
		w.scheduleAccidentRecoveryFix(rn.New)
		return
	}
	w.scheduleVictimFixes(reg, rn.New, rn.Day)
	id := idioms.Lookup(rn.Idiom)
	if id == nil || id.Class != idioms.Hijackable {
		return
	}
	regDom, ok := dnsname.RegisteredDomain(rn.New)
	if !ok {
		return
	}
	targetReg := w.dir.RegistryFor(regDom)
	if targetReg == nil {
		return // untracked TLD; cannot observe registration
	}
	if targetReg.Repository().DomainExists(regDom) {
		return // accidental collision with a registered domain (§4)
	}
	e := w.dangling[regDom]
	if e == nil {
		e = &danglingEntry{regDomain: regDom, reg: reg, created: rn.Day}
		w.dangling[regDom] = e
		w.danglingOrder = append(w.danglingOrder, e)
	}
	if e.reg == reg {
		e.ns = append(e.ns, rn.New)
	}
}

// scheduleVictimFixes decides which affected domains will notice and
// repair their delegation, and when.
func (w *World) scheduleVictimFixes(reg *registry.Registry, sacrificialNS dnsname.Name, day dates.Day) {
	repo := reg.Repository()
	for _, victim := range repo.LinkedDomains(sacrificialNS) {
		st := w.domains[victim]
		if st == nil {
			continue
		}
		partial := false
		if d, err := repo.DomainInfo(victim); err == nil {
			for _, ns := range repo.NSNames(d) {
				if ns == sacrificialNS {
					continue
				}
				if nsReg, ok := dnsname.RegisteredDomain(ns); ok {
					if owner := w.dir.RegistryFor(nsReg); owner != nil && owner.Repository().DomainExists(nsReg) {
						partial = true
						break
					}
				}
			}
		}
		p := 0.10
		if partial {
			p = 0.05
		}
		if st.popular {
			p = 0.85
		}
		if w.rng.Float64() < p {
			when := day.Add(3 + w.rng.Intn(57))
			w.fixes[when] = append(w.fixes[when], fixAction{domain: victim})
		}
	}
}

// processFixes applies scheduled delegation repairs.
func (w *World) processFixes(day dates.Day) {
	actions := w.fixes[day]
	if len(actions) == 0 {
		return
	}
	delete(w.fixes, day)
	for _, fx := range actions {
		st := w.domains[fx.domain]
		if st == nil {
			continue
		}
		hosts := fx.hosts
		if len(hosts) == 0 {
			hosts = w.defaultNS[st.registrar]
		}
		ok := true
		for _, h := range hosts {
			if err := w.ensureHost(st.reg, st.registrar, h, day); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Best-effort: the domain may have been transferred or its
		// delegation already changed.
		_ = st.reg.SetNS(st.registrar, fx.domain, day, hosts...)
	}
}

// hijackerTick runs scans and sweeps for every actor.
func (w *World) hijackerTick(day dates.Day) error {
	for _, a := range w.actors {
		scan, sweep := a.ScansOn(day), a.SweepsOn(day)
		if !scan && !sweep {
			continue
		}
		for _, e := range w.danglingOrder {
			if e.registered {
				continue
			}
			if scan && !a.Seen(e.regDomain) {
				if day.Sub(e.created) < a.NoticeAfter {
					continue // too fresh; later scans will pick it up
				}
				a.MarkSeen(e.regDomain)
				degree := w.degreeOf(e)
				if degree == 0 {
					continue
				}
				if w.wants(a, e, degree) {
					if err := w.registerHijack(a, e, day, degree, false); err != nil {
						return err
					}
				}
				continue
			}
			if sweep && a.Seen(e.regDomain) && w.rng.Float64() < a.SweepChance {
				degree := w.degreeOf(e)
				if degree > 0 && w.wants(a, e, degree) {
					if err := w.registerHijack(a, e, day, degree, true); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// wants applies the actor's selection policy, or the uniform ablation.
func (w *World) wants(a *hijacker.Actor, e *danglingEntry, degree int) bool {
	if w.cfg.UniformHijackers {
		return w.rng.Float64() < 0.012
	}
	return a.Wants(hijacker.Opportunity{Domain: e.regDomain, Degree: degree, Created: e.created}, w.rng)
}

// degreeOf counts domains currently delegated to the entry's sacrificial
// nameservers.
func (w *World) degreeOf(e *danglingEntry) int {
	repo := e.reg.Repository()
	seen := make(map[dnsname.Name]bool)
	for _, ns := range e.ns {
		for _, d := range repo.LinkedDomains(ns) {
			seen[d] = true
		}
	}
	return len(seen)
}

// registerHijack has the actor register the sacrificial domain and point
// it at their infrastructure.
func (w *World) registerHijack(a *hijacker.Actor, e *danglingEntry, day dates.Day, degree int, sweep bool) error {
	reg := w.dir.RegistryFor(e.regDomain)
	if reg == nil {
		return nil
	}
	expiry := day.AddYears(1)
	if err := reg.RegisterDomain(a.Registrar, e.regDomain, day, expiry); err != nil {
		return nil // lost a race with a brand registration; skip
	}
	w.who.Observe(e.regDomain, day, w.registrarName(a.Registrar))
	var hosts []dnsname.Name
	for _, h := range a.InfraNS {
		if err := w.ensureHost(reg, a.Registrar, h, day); err == nil {
			hosts = append(hosts, h)
		}
	}
	if len(hosts) > 0 {
		if err := reg.SetNS(a.Registrar, e.regDomain, day, hosts...); err != nil {
			return err
		}
	}
	st := &domainState{
		name: e.regDomain, registrar: a.Registrar, reg: reg,
		created: day, expiry: expiry, termYears: 1,
		kind: kindHijack, actor: a, hijackIdx: len(w.truth.Hijacks),
	}
	w.domains[e.regDomain] = st
	w.scheduleExpiry(e.regDomain, expiry)
	e.registered = true
	w.truth.Hijacks = append(w.truth.Hijacks, HijackEvent{
		Domain: e.regDomain, Actor: a.Name, Day: day, Degree: degree,
		Sweep: sweep, Expired: dates.None,
	})
	return nil
}
