package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dates"
	"repro/internal/dnsname"
	"repro/internal/epp"
	"repro/internal/idioms"
)

func TestNameGenUniqueness(t *testing.T) {
	g := newNameGen(rand.New(rand.NewSource(1)))
	seen := map[string]bool{}
	for i := 0; i < 20000; i++ {
		l := g.label()
		if seen[l] {
			t.Fatalf("duplicate label %q at %d", l, i)
		}
		seen[l] = true
		if _, err := dnsname.Parse(l + ".com"); err != nil {
			t.Fatalf("invalid label %q: %v", l, err)
		}
	}
}

func TestNameGenTypoShape(t *testing.T) {
	g := newNameGen(rand.New(rand.NewSource(2)))
	src := dnsname.MustParse("ns1.provider.com")
	for i := 0; i < 200; i++ {
		typo := g.typo(src)
		if _, err := dnsname.Parse(string(typo)); err != nil {
			t.Fatalf("invalid typo %q: %v", typo, err)
		}
		if typo == src {
			t.Fatalf("typo identical to source")
		}
		if typo.TLD() != "com" {
			t.Fatalf("typo changed TLD: %s", typo)
		}
	}
	// Very short SLDs fall back to a fresh name rather than mangling.
	short := g.typo("ns1.ab.com")
	if _, err := dnsname.Parse(string(short)); err != nil {
		t.Fatalf("short-source typo invalid: %v", err)
	}
}

func TestPoissonMean(t *testing.T) {
	w := &World{rng: rand.New(rand.NewSource(3))}
	const lambda = 7.0
	total := 0
	const n = 20000
	for i := 0; i < n; i++ {
		total += w.poisson(lambda)
	}
	mean := float64(total) / n
	if math.Abs(mean-lambda) > 0.15 {
		t.Fatalf("poisson mean = %.3f, want ~%v", mean, lambda)
	}
}

func TestForeignize(t *testing.T) {
	w := &World{}
	verisign := epp.NewRepository("Verisign", "com", "net", "edu", "gov")
	// A .com name in the Verisign repo must flip out.
	got := w.foreignize(verisign, "ns1.typoed.com")
	if verisign.Manages(got) {
		t.Fatalf("foreignize left %s inside the repository", got)
	}
	// A foreign name is untouched.
	if got := w.foreignize(verisign, "ns1.typoed.org"); got != "ns1.typoed.org" {
		t.Fatalf("foreignize changed an external name: %s", got)
	}
}

func TestWorldSetupInvariants(t *testing.T) {
	cfg := DefaultConfig(2)
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every registrar with a sink idiom owns its sink domain in the
	// right repository.
	for sink, owner := range map[dnsname.Name]epp.RegistrarID{
		"dummyns.com":        rrInternetBS,
		"lamedelegation.org": rrNetSol,
		"delete-host.com":    rrGMO,
		"deletedns.com":      rrXinNet,
	} {
		reg := w.dir.RegistryFor(sink)
		d, err := reg.Repository().DomainInfo(sink)
		if err != nil {
			t.Fatalf("sink %s not registered: %v", sink, err)
		}
		if d.Sponsor != owner {
			t.Errorf("sink %s sponsored by %s, want %s", sink, d.Sponsor, owner)
		}
		// Sinks are deliberately lame: no delegation published.
		if ns := reg.Repository().NSNames(d); len(ns) != 0 {
			t.Errorf("sink %s has delegation %v; must be lame", sink, ns)
		}
	}
	// Every registrar has working default nameservers with glue.
	for id, def := range w.defaultNS {
		if len(def) == 0 {
			t.Errorf("registrar %s has no default NS", id)
			continue
		}
		home := w.dir.RegistryFor(def[0])
		h, err := home.Repository().HostInfo(def[0])
		if err != nil {
			t.Errorf("default NS %s missing: %v", def[0], err)
			continue
		}
		if len(h.Addrs) == 0 {
			t.Errorf("default NS %s has no glue", def[0])
		}
	}
	// The market distribution sums to something sensible and every
	// market registrar exists.
	total := 0.0
	for _, m := range w.market {
		total += m.weight
		if w.registrars[m.id] == nil {
			t.Errorf("market registrar %s not constructed", m.id)
		}
	}
	if total < 0.9 || total > 1.1 {
		t.Errorf("market weights sum to %.2f", total)
	}
}

func TestIdiomScheduleWiring(t *testing.T) {
	cfg := DefaultConfig(2)
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		id   epp.RegistrarID
		day  string
		want idioms.ID
	}{
		{rrGoDaddy, "2012-01-01", idioms.PleaseDropThisHost},
		{rrGoDaddy, "2018-01-01", idioms.DropThisHost},
		{rrGoDaddy, "2021-06-01", idioms.EmptyAS112},
		{rrEnom, "2011-01-01", idioms.Enom123},
		{rrEnom, "2015-01-01", idioms.EnomRandom},
		{rrInternetBS, "2012-01-01", idioms.DummyNS},
		{rrInternetBS, "2017-01-01", idioms.DeletedDrop},
		{rrInternetBS, "2021-06-01", idioms.NotAPlaceToBe},
	}
	for _, c := range cases {
		day, err := parseDay(c.day)
		if err != nil {
			t.Fatal(err)
		}
		got := w.registrars[c.id].IdiomOn(day)
		if got == nil || got.ID != c.want {
			t.Errorf("%s on %s: idiom = %v, want %s", c.id, c.day, got, c.want)
		}
	}
}

func TestUseInvalidTLDSwitchesSchedules(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.UseInvalidTLD = true
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day, _ := parseDay("2021-06-01")
	for _, id := range []epp.RegistrarID{rrGoDaddy, rrEnom, rrInternetBS} {
		got := w.registrars[id].IdiomOn(day)
		if got == nil || got.ID != idioms.InvalidTLD {
			t.Errorf("%s post-switch idiom = %v, want invalid-tld", id, got)
		}
	}
}

func parseDay(s string) (dates.Day, error) { return dates.Parse(s) }
