package sim

import (
	"repro/internal/dates"
	"repro/internal/dnsname"
	"repro/internal/idioms"
)

// RenameEvent is the simulator's ground-truth record of one sacrificial
// rename: which registrar renamed which host object to what, under which
// idiom, and how many domains were delegated to it at that moment.
type RenameEvent struct {
	Old       dnsname.Name
	New       dnsname.Name
	Idiom     idioms.ID
	Registrar string
	Day       dates.Day
	// Linked is the number of domains whose delegation was silently
	// rewritten by the rename.
	Linked int
	// Accident marks renames caused by the Namecheap accidental deletion
	// rather than routine expiry processing.
	Accident bool
}

// HijackEvent records a hijacker registering a sacrificial nameserver
// domain.
type HijackEvent struct {
	Domain  dnsname.Name // the registered sacrificial NS domain
	Actor   string
	Day     dates.Day
	Degree  int // domains delegated at registration time
	Sweep   bool
	Expired dates.Day // when the registration finally lapsed (None if held at End)
}

// Truth is the full ground-truth ledger of a run, used to evaluate the
// detector. Nothing in internal/detect reads it.
type Truth struct {
	Renames []RenameEvent
	Hijacks []HijackEvent
	// TestNS lists registry test nameservers created (the EMT- pattern).
	TestNS []dnsname.Name
	// AccidentNS lists the sacrificial names created by the Namecheap
	// accident; analyses exclude them as the paper does.
	AccidentNS []dnsname.Name
	// SinkTransfers records sink domains that changed hands (the
	// dummyns.com drop-catch of footnote 6).
	SinkTransfers []dnsname.Name
}

// SacrificialSet returns the set of all ground-truth sacrificial
// nameserver names (excluding accident renames when excludeAccident).
func (t *Truth) SacrificialSet(excludeAccident bool) map[dnsname.Name]bool {
	out := make(map[dnsname.Name]bool, len(t.Renames))
	for _, r := range t.Renames {
		if excludeAccident && r.Accident {
			continue
		}
		out[r.New] = true
	}
	return out
}

// HijackableSet returns the ground-truth sacrificial names created by
// hijackable idioms.
func (t *Truth) HijackableSet() map[dnsname.Name]bool {
	out := make(map[dnsname.Name]bool)
	for _, r := range t.Renames {
		if r.Accident {
			continue
		}
		if id := idioms.Lookup(r.Idiom); id != nil && id.Class == idioms.Hijackable {
			out[r.New] = true
		}
	}
	return out
}
