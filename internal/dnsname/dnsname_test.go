package dnsname

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	cases := map[string]Name{
		"Example.COM.":      "example.com",
		"ns1.foo.com":       "ns1.foo.com",
		"a-b.c_d.org":       "a-b.c_d.org",
		"xn--dmin-moa0i.de": "xn--dmin-moa0i.de",
		"EMT-NS1.EMT-T.COM": "emt-ns1.emt-t.com",
		"single":            "single",
		"123.biz":           "123.biz",
	}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	cases := map[string]error{
		"":                                  ErrEmpty,
		".":                                 ErrEmpty,
		"foo..com":                          ErrBadLabel,
		"-foo.com":                          ErrBadLabel,
		"foo-.com":                          ErrBadLabel,
		"foo.com..":                         ErrBadLabel,
		"f!oo.com":                          ErrBadLabel,
		"fo o.com":                          ErrBadLabel,
		strings.Repeat("a", 64) + ".com":    ErrLabelTooLong,
		strings.Repeat("abcd.", 51) + "com": ErrTooLong,
	}
	for in, wantErr := range cases {
		if _, err := Parse(in); !errors.Is(err, wantErr) {
			t.Errorf("Parse(%q) err = %v, want %v", in, err, wantErr)
		}
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	f := func(s string) bool {
		c := Canonical(s)
		return Canonical(string(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabels(t *testing.T) {
	n := MustParse("ns1.foo.co.uk")
	if got := n.Labels(); len(got) != 4 || got[0] != "ns1" || got[3] != "uk" {
		t.Fatalf("Labels = %v", got)
	}
	if n.NumLabels() != 4 {
		t.Errorf("NumLabels = %d", n.NumLabels())
	}
	if n.TLD() != "uk" || n.FirstLabel() != "ns1" || n.Parent() != "foo.co.uk" {
		t.Error("label accessors broken")
	}
	if Name("").NumLabels() != 0 || Name("").Labels() != nil {
		t.Error("empty name accessors broken")
	}
	if Name("com").Parent() != "" {
		t.Error("TLD parent should be empty")
	}
}

func TestSubdomainRelations(t *testing.T) {
	if !Name("ns1.foo.com").IsSubdomainOf("foo.com") {
		t.Error("direct subdomain not detected")
	}
	if Name("foo.com").IsSubdomainOf("foo.com") {
		t.Error("name is not its own subdomain")
	}
	if Name("xfoo.com").IsSubdomainOf("foo.com") {
		t.Error("label-boundary violation: xfoo.com is not under foo.com")
	}
	if !Name("foo.com").InZone("com") || !Name("com").InZone("com") {
		t.Error("InZone broken")
	}
	if Name("foo.org").InZone("com") {
		t.Error("InZone cross-TLD false positive")
	}
}

func TestRegisteredDomain(t *testing.T) {
	cases := []struct {
		in   Name
		want Name
		ok   bool
	}{
		{"ns1.foo.com", "foo.com", true},
		{"foo.com", "foo.com", true},
		{"a.b.c.foo.com", "foo.com", true},
		{"a.b.co.uk", "b.co.uk", true},
		{"co.uk", "co.uk", false},
		{"com", "com", false},
		{"x.empty.as112.arpa", "empty.as112.arpa", true},
		{"as112.arpa", "as112.arpa", false},
	}
	for _, c := range cases {
		got, ok := RegisteredDomain(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("RegisteredDomain(%q) = %q, %v; want %q, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestSecondLevelLabel(t *testing.T) {
	if sld, ok := SecondLevelLabel("ns2.internetemc.com"); !ok || sld != "internetemc" {
		t.Errorf("SecondLevelLabel = %q, %v", sld, ok)
	}
	if _, ok := SecondLevelLabel("com"); ok {
		t.Error("bare TLD should have no SLD")
	}
}

func TestJoin(t *testing.T) {
	if Join("ns1", "foo.com") != "ns1.foo.com" {
		t.Error("Join broken")
	}
	if Join("x", "") != "x" {
		t.Error("Join with empty parent broken")
	}
	if Join("NS1", "Foo.COM") != "ns1.foo.com" {
		t.Error("Join should canonicalize")
	}
}

func TestCompare(t *testing.T) {
	if Compare("a.com", "b.com") >= 0 || Compare("b.com", "a.com") <= 0 || Compare("a.com", "a.com") != 0 {
		t.Error("Compare broken")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on invalid input")
		}
	}()
	MustParse("-bad-.com")
}
