// Package dnsname provides canonical DNS name handling for the pipeline:
// normalization, validation, label access, and registered-domain (eTLD+1)
// extraction against a built-in public-suffix list covering the zones in
// the study.
//
// Names are stored as lower-case ASCII with no trailing dot. DNS name
// comparison is case-insensitive (RFC 1035 §2.3.3), and zone files mix
// cases freely, so normalizing once at the boundary lets the rest of the
// pipeline compare names with ==, use them as map keys, and sort them
// byte-wise.
package dnsname

import (
	"errors"
	"fmt"
	"strings"
)

// Name is a canonical (lower-case, no trailing dot) DNS name.
type Name string

// Errors returned by Parse and friends.
var (
	ErrEmpty        = errors.New("dnsname: empty name")
	ErrTooLong      = errors.New("dnsname: name exceeds 253 octets")
	ErrBadLabel     = errors.New("dnsname: invalid label")
	ErrLabelTooLong = errors.New("dnsname: label exceeds 63 octets")
)

// MaxNameLength is the maximum presentation length of a name (RFC 1035).
const MaxNameLength = 253

// MaxLabelLength is the maximum length of a single label (RFC 1035).
const MaxLabelLength = 63

// Canonical lower-cases s and strips a single trailing dot. It performs no
// validation; use Parse for untrusted input.
func Canonical(s string) Name {
	s = strings.TrimSuffix(s, ".")
	// Fast path: already lower-case ASCII.
	lower := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			lower = false
			break
		}
	}
	if !lower {
		s = strings.ToLower(s)
	}
	return Name(s)
}

// Parse validates and canonicalizes a presentation-format name.
// It accepts letters, digits, and hyphens within labels, plus underscore
// (seen in operational zone data), and rejects empty labels, leading or
// trailing hyphens, and over-long names or labels.
func Parse(s string) (Name, error) {
	n := Canonical(s)
	if n == "" {
		return "", ErrEmpty
	}
	if len(n) > MaxNameLength {
		return "", ErrTooLong
	}
	rest := string(n)
	for rest != "" {
		var label string
		if i := strings.IndexByte(rest, '.'); i >= 0 {
			label, rest = rest[:i], rest[i+1:]
			if rest == "" {
				return "", fmt.Errorf("%w: empty trailing label in %q", ErrBadLabel, s)
			}
		} else {
			label, rest = rest, ""
		}
		if err := checkLabel(label); err != nil {
			return "", fmt.Errorf("%w in %q", err, s)
		}
	}
	return n, nil
}

// MustParse is Parse for trusted literals; it panics on error.
func MustParse(s string) Name {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

func checkLabel(label string) error {
	if label == "" {
		return fmt.Errorf("%w: empty label", ErrBadLabel)
	}
	if len(label) > MaxLabelLength {
		return ErrLabelTooLong
	}
	if label[0] == '-' || label[len(label)-1] == '-' {
		return fmt.Errorf("%w: label %q begins or ends with hyphen", ErrBadLabel, label)
	}
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
		case c >= 'A' && c <= 'Z':
			// Canonical() lower-cased already; defensive.
		default:
			return fmt.Errorf("%w: byte %q in label %q", ErrBadLabel, c, label)
		}
	}
	return nil
}

// String returns the canonical presentation form.
func (n Name) String() string { return string(n) }

// Labels returns the labels of n from most- to least-specific
// ("ns1.foo.com" -> ["ns1", "foo", "com"]).
func (n Name) Labels() []string {
	if n == "" {
		return nil
	}
	return strings.Split(string(n), ".")
}

// NumLabels returns the number of labels in n.
func (n Name) NumLabels() int {
	if n == "" {
		return 0
	}
	return strings.Count(string(n), ".") + 1
}

// TLD returns the final label of n ("ns1.foo.com" -> "com").
func (n Name) TLD() Name {
	if i := strings.LastIndexByte(string(n), '.'); i >= 0 {
		return n[i+1:]
	}
	return n
}

// Parent returns the name with the first label removed, or "" for a TLD or
// empty name ("ns1.foo.com" -> "foo.com").
func (n Name) Parent() Name {
	if i := strings.IndexByte(string(n), '.'); i >= 0 {
		return n[i+1:]
	}
	return ""
}

// FirstLabel returns the leading label of n ("ns1.foo.com" -> "ns1").
func (n Name) FirstLabel() string {
	if i := strings.IndexByte(string(n), '.'); i >= 0 {
		return string(n[:i])
	}
	return string(n)
}

// IsSubdomainOf reports whether n is strictly below parent in the DNS tree.
func (n Name) IsSubdomainOf(parent Name) bool {
	if len(n) <= len(parent)+1 {
		return false
	}
	return strings.HasSuffix(string(n), "."+string(parent))
}

// InZone reports whether n equals zone or is a subdomain of zone.
func (n Name) InZone(zone Name) bool {
	return n == zone || n.IsSubdomainOf(zone)
}

// Join prepends a label (or dotted prefix) to n.
func Join(prefix string, n Name) Name {
	if n == "" {
		return Canonical(prefix)
	}
	return Canonical(prefix + "." + string(n))
}

// publicSuffixes holds the multi-label public suffixes relevant to the
// study's zones. Single-label TLDs need no entry: any unlisted final label
// is treated as a public suffix by itself, which matches how registries in
// the measured data operate.
var publicSuffixes = map[Name]bool{
	"co.uk":        true,
	"org.uk":       true,
	"ac.uk":        true,
	"com.au":       true,
	"net.au":       true,
	"co.jp":        true,
	"ne.jp":        true,
	"com.br":       true,
	"com.cn":       true,
	"in-addr.arpa": true,
	"as112.arpa":   true,
}

// RegisteredDomain returns the registrable domain of n: one label below
// the longest matching public suffix ("ns1.foo.com" -> "foo.com",
// "a.b.co.uk" -> "b.co.uk"). A name that is itself a public suffix (or a
// bare TLD) is returned unchanged with ok=false.
func RegisteredDomain(n Name) (Name, bool) {
	labels := n.Labels()
	if len(labels) <= 1 {
		return n, false
	}
	// Find the longest public suffix that is a proper suffix of n.
	suffixLabels := 1
	for i := len(labels) - 2; i >= 0; i-- {
		candidate := Name(strings.Join(labels[i:], "."))
		if publicSuffixes[candidate] {
			suffixLabels = len(labels) - i
		}
	}
	if len(labels) == suffixLabels {
		return n, false // n is itself a public suffix
	}
	start := len(labels) - suffixLabels - 1
	return Name(strings.Join(labels[start:], ".")), true
}

// SecondLevelLabel returns the label immediately below the public suffix:
// the "foo" of ns1.foo.com. ok is false when n has no registrable part.
func SecondLevelLabel(n Name) (string, bool) {
	reg, ok := RegisteredDomain(n)
	if !ok {
		return "", false
	}
	return reg.FirstLabel(), true
}

// Compare orders names byte-wise in canonical form, which groups names by
// suffix usefully enough for reporting.
func Compare(a, b Name) int { return strings.Compare(string(a), string(b)) }
