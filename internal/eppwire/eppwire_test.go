package eppwire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("<epp/>")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(payload)+4 {
		t.Fatalf("frame length %d", buf.Len())
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty frame: %q, %v", got, err)
	}
}

func TestFrameLimits(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+5)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err != ErrFrameTooLarge {
		t.Errorf("oversize frame: %v", err)
	}
	binary.BigEndian.PutUint32(hdr[:], 2)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err != ErrShortFrame {
		t.Errorf("undersize frame: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Error("truncated header should fail")
	}
}

func roundTrip(t *testing.T, in *EPP) *EPP {
	t.Helper()
	data, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	out, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, data)
	}
	return out
}

func TestGreetingRoundTrip(t *testing.T) {
	in := &EPP{Greeting: &Greeting{ServerID: "Verisign", ServerDate: "2020-09-15",
		Services: []string{"urn:epp:domain", "urn:epp:host"}}}
	out := roundTrip(t, in)
	if !reflect.DeepEqual(in.Greeting, out.Greeting) {
		t.Fatalf("greeting mismatch: %+v vs %+v", in.Greeting, out.Greeting)
	}
}

func TestCommandRoundTrips(t *testing.T) {
	cases := []*Command{
		{Login: &Login{ClientID: "godaddy", Password: "pw"}},
		{Logout: &Logout{}},
		{Check: &Check{Domains: []string{"a.com", "b.com"}, Hosts: []string{"ns1.a.com"}}},
		{Info: &Info{Domain: "a.com"}},
		{Info: &Info{Host: "ns1.a.com"}},
		{Create: &Create{Domain: &DomainCreate{Name: "a.com", Period: 2, NS: []string{"ns1.x.net", "ns2.x.net"}}}},
		{Create: &Create{Host: &HostCreate{Name: "ns1.a.com", Addrs: []string{"192.0.2.1", "2001:db8::1"}}}},
		{Delete: &Delete{Domain: "a.com"}},
		{Delete: &Delete{Host: "ns1.a.com"}},
		{Renew: &Renew{Domain: "a.com", Years: 1}},
		{Update: &Update{Host: &HostUpdate{Name: "ns2.foo.com", NewName: "ns2.fooxxxx.biz"}}},
		{Update: &Update{Domain: &DomainUpdate{Name: "a.com", NS: []string{"ns1.y.net"}}}},
	}
	for i, cmd := range cases {
		cmd.ClTRID = "T1"
		out := roundTrip(t, &EPP{Command: cmd})
		if out.Command == nil {
			t.Fatalf("case %d: command lost", i)
		}
		if !reflect.DeepEqual(cmd, out.Command) {
			t.Errorf("case %d (%s): mismatch\n got %#v\nwant %#v", i, cmd.Verb(), out.Command, cmd)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	in := &EPP{Response: &Response{
		Result: Result{Code: 2305, Msg: "Object association prohibits operation"},
		ResData: &ResData{
			HostInfo: &HostInfoData{
				Name: "ns2.foo.com", ROID: "H2-Verisign", Sponsor: "A",
				Superordinate: "D1-Verisign", Addrs: []string{"192.0.2.1"},
				LinkedDomains: []string{"bar.com"},
			},
		},
		ClTRID: "C1", SvTRID: "S1",
	}}
	out := roundTrip(t, in)
	if !reflect.DeepEqual(in.Response, out.Response) {
		t.Fatalf("response mismatch:\n got %#v\nwant %#v", out.Response, in.Response)
	}
}

func TestCheckItemAttr(t *testing.T) {
	in := &EPP{Response: &Response{
		Result:  Result{Code: 1000, Msg: "ok"},
		ResData: &ResData{CheckResult: []CheckItem{{Name: "a.com", Available: true}, {Name: "b.com"}}},
	}}
	data, _ := Marshal(in)
	if !strings.Contains(string(data), `avail="true"`) {
		t.Fatalf("avail attr missing:\n%s", data)
	}
	out := roundTrip(t, in)
	got := out.Response.ResData.CheckResult
	if len(got) != 2 || !got[0].Available || got[1].Available {
		t.Fatalf("check items = %+v", got)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not xml at all <<<")); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestVerb(t *testing.T) {
	if (&Command{Login: &Login{}}).Verb() != "login" ||
		(&Command{Update: &Update{}}).Verb() != "update" ||
		(&Command{}).Verb() != "unknown" {
		t.Error("Verb broken")
	}
}

func TestSendReceive(t *testing.T) {
	var buf bytes.Buffer
	in := &EPP{Command: &Command{Check: &Check{Domains: []string{"x.com"}}, ClTRID: "T9"}}
	if err := Send(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Receive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Command == nil || out.Command.ClTRID != "T9" {
		t.Fatalf("Receive = %+v", out)
	}
}

func TestTransferAndPollRoundTrips(t *testing.T) {
	cases := []*Command{
		{Transfer: &Transfer{Op: "request", Domain: "moving.com", AuthInfo: "s3cret"}},
		{Transfer: &Transfer{Op: "approve", Domain: "moving.com"}},
		{Transfer: &Transfer{Op: "reject", Domain: "moving.com"}},
		{Transfer: &Transfer{Op: "query", Domain: "moving.com"}},
		{Poll: &Poll{Op: "req"}},
		{Poll: &Poll{Op: "ack", MsgID: "42"}},
		{Create: &Create{Domain: &DomainCreate{Name: "a.com", Period: 1, AuthInfo: "pw1"}}},
	}
	for i, cmd := range cases {
		cmd.ClTRID = "T2"
		out := roundTrip(t, &EPP{Command: cmd})
		if !reflect.DeepEqual(cmd, out.Command) {
			t.Errorf("case %d (%s): mismatch\n got %#v\nwant %#v", i, cmd.Verb(), out.Command, cmd)
		}
	}
	if (&Command{Transfer: &Transfer{Op: "request"}}).Verb() != "transfer-request" {
		t.Error("transfer verb broken")
	}
	if (&Command{Poll: &Poll{Op: "ack"}}).Verb() != "poll-ack" {
		t.Error("poll verb broken")
	}
}

func TestMsgQueueRoundTrip(t *testing.T) {
	in := &EPP{Response: &Response{
		Result:   Result{Code: 1301, Msg: "ack to dequeue"},
		MsgQueue: &MsgQueue{Count: 3, ID: "17", Date: "2020-10-01", Msg: "Transfer of x.com requested"},
		ClTRID:   "C2", SvTRID: "S2",
	}}
	out := roundTrip(t, in)
	if !reflect.DeepEqual(in.Response, out.Response) {
		t.Fatalf("msgQ mismatch:\n got %#v\nwant %#v", out.Response, in.Response)
	}
}

// countingWriter records the size of each Write it receives.
type countingWriter struct {
	writes [][]byte
}

func (w *countingWriter) Write(b []byte) (int, error) {
	w.writes = append(w.writes, append([]byte(nil), b...))
	return len(b), nil
}

func TestWriteFrameIsOneWrite(t *testing.T) {
	// One frame must be exactly one Write: header and payload coalesced,
	// so a frame that fits goes out as one TCP segment and write-counting
	// fault injectors see one fault point per frame.
	var w countingWriter
	payload := []byte("<epp><command/></epp>")
	if err := WriteFrame(&w, payload); err != nil {
		t.Fatal(err)
	}
	if len(w.writes) != 1 {
		t.Fatalf("WriteFrame issued %d writes, want 1", len(w.writes))
	}
	frame := w.writes[0]
	if got, want := len(frame), len(payload)+4; got != want {
		t.Fatalf("frame length = %d, want %d", got, want)
	}
	if total := binary.BigEndian.Uint32(frame[:4]); total != uint32(len(frame)) {
		t.Fatalf("header says %d, frame is %d bytes", total, len(frame))
	}
	if string(frame[4:]) != string(payload) {
		t.Fatalf("payload mangled: %q", frame[4:])
	}
}
