// Package eppwire implements a compact EPP protocol codec: the
// length-prefixed framing of RFC 5734 and an XML vocabulary following
// the shapes of RFC 5730 (protocol), RFC 5731 (domain mapping), and
// RFC 5732 (host mapping).
//
// The schema is a faithful subset: greeting, login/logout, check, info,
// create, delete, renew, and update for domain and host objects —
// including <host:chg><host:name>, the rename operation at the heart of
// the sacrificial-nameserver mechanism. Namespace URIs are simplified to
// single identifiers; element names and nesting match the RFCs closely
// enough that transcripts read like real EPP sessions.
package eppwire

import (
	"encoding/binary"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds accepted frame sizes (RFC 5734 leaves this to server
// policy).
const MaxFrame = 1 << 20

// Framing errors.
var (
	ErrFrameTooLarge = errors.New("eppwire: frame exceeds maximum size")
	ErrShortFrame    = errors.New("eppwire: frame shorter than header")
)

// WriteFrame writes one EPP data unit: a 4-octet big-endian total length
// (including the header itself) followed by the payload (RFC 5734 §4).
// Header and payload go out in a single Write so a frame is one TCP
// segment when it fits, and a fault injector counting writes sees one
// write per frame.
func WriteFrame(w io.Writer, payload []byte) error {
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(buf)))
	copy(buf[4:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one EPP data unit.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	total := binary.BigEndian.Uint32(hdr[:])
	if total < 4 {
		return nil, ErrShortFrame
	}
	if total > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, total-4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// EPP is the top-level protocol element: exactly one of Greeting,
// Command, or Response is set.
type EPP struct {
	XMLName  xml.Name  `xml:"epp"`
	Greeting *Greeting `xml:"greeting,omitempty"`
	Command  *Command  `xml:"command,omitempty"`
	Response *Response `xml:"response,omitempty"`
}

// Greeting is the server hello (RFC 5730 §2.4).
type Greeting struct {
	ServerID   string   `xml:"svID"`
	ServerDate string   `xml:"svDate"`
	Services   []string `xml:"svcMenu>objURI"`
}

// Command wraps one client command (RFC 5730 §2.5). Exactly one verb is
// set.
type Command struct {
	Login    *Login    `xml:"login,omitempty"`
	Logout   *Logout   `xml:"logout,omitempty"`
	Check    *Check    `xml:"check,omitempty"`
	Info     *Info     `xml:"info,omitempty"`
	Create   *Create   `xml:"create,omitempty"`
	Delete   *Delete   `xml:"delete,omitempty"`
	Renew    *Renew    `xml:"renew,omitempty"`
	Update   *Update   `xml:"update,omitempty"`
	Transfer *Transfer `xml:"transfer,omitempty"`
	Poll     *Poll     `xml:"poll,omitempty"`
	// ClTRID is the client transaction identifier, echoed in responses.
	ClTRID string `xml:"clTRID,omitempty"`
}

// Transfer requests, approves, rejects, or queries a domain transfer
// (RFC 5730 §2.9.3.4). AuthInfo authorizes "request".
type Transfer struct {
	Op       string `xml:"op,attr"`
	Domain   string `xml:"domain>name"`
	AuthInfo string `xml:"domain>authInfo,omitempty"`
}

// Poll requests ("req") or acknowledges ("ack") service messages
// (RFC 5730 §2.9.2.3).
type Poll struct {
	Op    string `xml:"op,attr"`
	MsgID string `xml:"msgID,attr,omitempty"`
}

// Login authenticates a registrar session.
type Login struct {
	ClientID string `xml:"clID"`
	Password string `xml:"pw"`
}

// Logout ends the session.
type Logout struct{}

// Check asks about object availability (domain names only; host checks
// are not needed by the tooling).
type Check struct {
	Domains []string `xml:"domain>name,omitempty"`
	Hosts   []string `xml:"host>name,omitempty"`
}

// Info requests object details.
type Info struct {
	Domain string `xml:"domain>name,omitempty"`
	Host   string `xml:"host>name,omitempty"`
}

// Create provisions a domain or host object.
type Create struct {
	Domain *DomainCreate `xml:"domain,omitempty"`
	Host   *HostCreate   `xml:"host,omitempty"`
}

// DomainCreate mirrors RFC 5731 <domain:create>.
type DomainCreate struct {
	Name     string   `xml:"name"`
	Period   int      `xml:"period,omitempty"` // years
	NS       []string `xml:"ns>hostObj,omitempty"`
	AuthInfo string   `xml:"authInfo>pw,omitempty"`
}

// HostCreate mirrors RFC 5732 <host:create>.
type HostCreate struct {
	Name  string   `xml:"name"`
	Addrs []string `xml:"addr,omitempty"`
}

// Delete removes a domain or host object.
type Delete struct {
	Domain string `xml:"domain>name,omitempty"`
	Host   string `xml:"host>name,omitempty"`
}

// Renew extends a domain registration.
type Renew struct {
	Domain string `xml:"domain>name"`
	Years  int    `xml:"period"`
}

// Update modifies a domain's delegation or renames a host.
type Update struct {
	Domain *DomainUpdate `xml:"domain,omitempty"`
	Host   *HostUpdate   `xml:"host,omitempty"`
}

// DomainUpdate replaces the delegation of a domain (a simplification of
// RFC 5731's add/rem/chg structure sufficient for the tooling).
type DomainUpdate struct {
	Name string   `xml:"name"`
	NS   []string `xml:"chg>ns>hostObj"`
}

// HostUpdate renames a host object: RFC 5732 <host:update> with
// <host:chg><host:name>.
type HostUpdate struct {
	Name    string `xml:"name"`
	NewName string `xml:"chg>name"`
}

// Response is the server reply (RFC 5730 §2.6).
type Response struct {
	Result   Result    `xml:"result"`
	MsgQueue *MsgQueue `xml:"msgQ,omitempty"`
	ResData  *ResData  `xml:"resData,omitempty"`
	ClTRID   string    `xml:"trID>clTRID,omitempty"`
	SvTRID   string    `xml:"trID>svTRID,omitempty"`
}

// MsgQueue carries one queued service message (RFC 5730 §2.9.2.3).
type MsgQueue struct {
	Count int    `xml:"count,attr"`
	ID    string `xml:"id,attr"`
	Date  string `xml:"qDate"`
	Msg   string `xml:"msg"`
}

// Result carries the EPP result code and message.
type Result struct {
	Code int    `xml:"code,attr"`
	Msg  string `xml:"msg"`
}

// ResData carries object data in responses.
type ResData struct {
	DomainInfo  *DomainInfoData `xml:"domainInfo,omitempty"`
	HostInfo    *HostInfoData   `xml:"hostInfo,omitempty"`
	CheckResult []CheckItem     `xml:"chkData,omitempty"`
}

// DomainInfoData mirrors RFC 5731 <domain:infData>.
type DomainInfoData struct {
	Name    string   `xml:"name"`
	ROID    string   `xml:"roid"`
	Sponsor string   `xml:"clID"`
	NS      []string `xml:"ns>hostObj,omitempty"`
	Created string   `xml:"crDate"`
	Expiry  string   `xml:"exDate"`
}

// HostInfoData mirrors RFC 5732 <host:infData>.
type HostInfoData struct {
	Name          string   `xml:"name"`
	ROID          string   `xml:"roid"`
	Sponsor       string   `xml:"clID"`
	Superordinate string   `xml:"superordinate,omitempty"`
	Addrs         []string `xml:"addr,omitempty"`
	LinkedDomains []string `xml:"linked,omitempty"`
}

// CheckItem is one availability answer.
type CheckItem struct {
	Name      string `xml:"name"`
	Available bool   `xml:"avail,attr"`
}

// Marshal encodes an EPP element with the standard XML header.
func Marshal(e *EPP) ([]byte, error) {
	body, err := xml.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), body...), nil
}

// Unmarshal decodes an EPP element.
func Unmarshal(data []byte) (*EPP, error) {
	var e EPP
	if err := xml.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("eppwire: %w", err)
	}
	return &e, nil
}

// Send marshals and frames an EPP element onto w.
func Send(w io.Writer, e *EPP) error {
	data, err := Marshal(e)
	if err != nil {
		return err
	}
	return WriteFrame(w, data)
}

// Receive reads and decodes one framed EPP element from r.
func Receive(r io.Reader) (*EPP, error) {
	data, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// Verb returns a short name for the command's verb, for logging.
func (c *Command) Verb() string {
	switch {
	case c.Login != nil:
		return "login"
	case c.Logout != nil:
		return "logout"
	case c.Check != nil:
		return "check"
	case c.Info != nil:
		return "info"
	case c.Create != nil:
		return "create"
	case c.Delete != nil:
		return "delete"
	case c.Renew != nil:
		return "renew"
	case c.Update != nil:
		return "update"
	case c.Transfer != nil:
		return "transfer-" + c.Transfer.Op
	case c.Poll != nil:
		return "poll-" + c.Poll.Op
	default:
		return "unknown"
	}
}
