// Package dnsserver is a small authoritative DNS server over UDP, built
// on the dnswire codec. It serves static zone content and supports a
// source-address answer policy — the mechanism the paper's controlled
// experiment used to answer queries for a hijackable .edu name only from
// a /24 the authors controlled (§6.1, §8).
package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"

	"repro/internal/dnsname"
	"repro/internal/dnswire"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// Metric names recorded when the server is instrumented.
const (
	MetricQueries   = "dns_queries_total"
	MetricResponses = "dns_responses_total"
	MetricDropped   = "dns_dropped_total"
	MetricErrors    = "dns_errors_total"
)

// Policy decides whether a query may be answered. Queries it rejects
// receive no response at all (not an error RCode) — exactly the
// "careful to never respond" behaviour of the experiment.
type Policy func(q dnswire.Question, from netip.AddrPort) bool

// AnswerAll answers every query.
func AnswerAll(dnswire.Question, netip.AddrPort) bool { return true }

// AnswerOnlyPrefix answers only queries from the given prefix.
func AnswerOnlyPrefix(p netip.Prefix) Policy {
	return func(_ dnswire.Question, from netip.AddrPort) bool {
		return p.Contains(from.Addr().Unmap())
	}
}

// Stats counts server activity.
type Stats struct {
	Queries  atomic.Int64
	Answered atomic.Int64
	Dropped  atomic.Int64
	Errors   atomic.Int64
}

// Server is an authoritative server for a set of zones.
type Server struct {
	mu      sync.RWMutex
	zones   map[dnsname.Name]bool
	records map[recordKey][]dnswire.Record
	policy  Policy

	pc     net.PacketConn
	ln     net.Listener
	closed atomic.Bool

	// Stats is exported for tests and the experiment harness.
	Stats Stats

	// QueryLog, when non-nil, receives every query name (even dropped
	// ones); the experiment uses it to observe incoming resolution
	// attempts without answering them.
	QueryLog func(q dnswire.Question, from netip.AddrPort)

	// Tracer, when non-nil, journals one "dns.query" span per query
	// (DNS has no trace-context carrier, so query spans are always
	// roots, tagged with name, type, and outcome). Set before Serve.
	Tracer *trace.Tracer

	// obs metric handles, nil until Instrument is called.
	mQueries   *obs.Counter
	mDropped   *obs.Counter
	mErrors    *obs.Counter
	mResponses *obs.CounterVec // by response code
}

// Instrument mirrors the server's activity counters into reg, with
// responses broken down by DNS response code. Call before Serve.
func (s *Server) Instrument(reg *obs.Registry) {
	s.mQueries = reg.Counter(MetricQueries, "DNS queries received.")
	s.mDropped = reg.Counter(MetricDropped, "Queries dropped by the answer policy.")
	s.mErrors = reg.Counter(MetricErrors, "Malformed queries and send failures.")
	s.mResponses = reg.CounterVec(MetricResponses, "DNS responses sent, by response code.", "rcode")
}

type recordKey struct {
	name dnsname.Name
	typ  dnswire.Type
}

// New creates a server with the given answer policy (nil = AnswerAll).
func New(policy Policy) *Server {
	if policy == nil {
		policy = AnswerAll
	}
	return &Server{
		zones:   make(map[dnsname.Name]bool),
		records: make(map[recordKey][]dnswire.Record),
		policy:  policy,
	}
}

// SetPolicy atomically replaces the answer policy.
func (s *Server) SetPolicy(p Policy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p == nil {
		p = AnswerAll
	}
	s.policy = p
}

// AddZone declares authority over zone and installs its SOA.
func (s *Server) AddZone(zone dnsname.Name) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[zone] = true
	key := recordKey{zone, dnswire.TypeSOA}
	if len(s.records[key]) == 0 {
		s.records[key] = []dnswire.Record{{
			Name: zone, Type: dnswire.TypeSOA, Class: dnswire.ClassIN, TTL: 3600,
			SOA: dnswire.SOAData{
				MName: dnsname.Join("ns1", zone), RName: dnsname.Join("hostmaster", zone),
				Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
			},
		}}
	}
}

// AddRecord installs a record. The owner must be inside a declared zone.
func (s *Server) AddRecord(r dnswire.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.inZoneLocked(r.Name) {
		return fmt.Errorf("dnsserver: %s outside served zones", r.Name)
	}
	if r.Class == 0 {
		r.Class = dnswire.ClassIN
	}
	if r.TTL == 0 {
		r.TTL = 300
	}
	key := recordKey{r.Name, r.Type}
	s.records[key] = append(s.records[key], r)
	return nil
}

// AddA is a convenience for installing an A record.
func (s *Server) AddA(name dnsname.Name, addr netip.Addr) error {
	return s.AddRecord(dnswire.Record{Name: name, Type: dnswire.TypeA, Addr: addr})
}

func (s *Server) inZoneLocked(name dnsname.Name) bool {
	for z := range s.zones {
		if name.InZone(z) {
			return true
		}
	}
	return false
}

// zoneFor returns the declared zone containing name, or "".
func (s *Server) zoneFor(name dnsname.Name) dnsname.Name {
	best := dnsname.Name("")
	for z := range s.zones {
		if name.InZone(z) && len(z) > len(best) {
			best = z
		}
	}
	return best
}

// Serve reads queries from pc until Close. It always returns a non-nil
// error (net.ErrClosed after Close).
func (s *Server) Serve(pc net.PacketConn) error {
	s.mu.Lock()
	s.pc = pc
	s.mu.Unlock()
	buf := make([]byte, 4096)
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			if s.closed.Load() {
				return net.ErrClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		resp := s.handleWire(buf[:n], addrPortOf(from), true)
		if resp != nil {
			if _, err := pc.WriteTo(resp, from); err != nil {
				s.countError()
			}
		}
	}
}

// ServeTCP accepts DNS-over-TCP sessions on ln (RFC 1035 §4.2.2: each
// message is prefixed with a two-octet length). TCP responses are never
// truncated, so the stub's TC-bit fallback lands here.
func (s *Server) ServeTCP(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return net.ErrClosed
			}
			return err
		}
		go s.tcpSession(conn)
	}
}

func (s *Server) tcpSession(conn net.Conn) {
	defer conn.Close()
	from := addrPortOf(conn.RemoteAddr())
	var hdr [2]byte
	for {
		if _, err := readFull(conn, hdr[:]); err != nil {
			return
		}
		n := int(hdr[0])<<8 | int(hdr[1])
		if n == 0 || n > 65535 {
			return
		}
		buf := make([]byte, n)
		if _, err := readFull(conn, buf); err != nil {
			return
		}
		resp := s.handleWire(buf, from, false)
		if resp == nil {
			continue // policy drop: stay silent but keep the connection
		}
		out := make([]byte, 2+len(resp))
		out[0], out[1] = byte(len(resp)>>8), byte(len(resp))
		copy(out[2:], resp)
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Close stops the server.
func (s *Server) Close() error {
	s.closed.Store(true)
	var first error
	s.mu.Lock()
	pc, ln := s.pc, s.ln
	s.mu.Unlock()
	if pc != nil {
		first = pc.Close()
	}
	if ln != nil {
		if err := ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func addrPortOf(addr net.Addr) netip.AddrPort {
	if ua, ok := addr.(*net.UDPAddr); ok {
		return ua.AddrPort()
	}
	if ap, err := netip.ParseAddrPort(addr.String()); err == nil {
		return ap
	}
	return netip.AddrPort{}
}

// handleWire processes one wire-format query; a nil return means "send
// nothing" (malformed input or policy drop). udp selects 512-octet
// truncation semantics.
func (s *Server) handleWire(wire []byte, from netip.AddrPort, udp bool) []byte {
	_, sp := s.Tracer.Start(context.Background(), "dns.query")
	outcome := "error"
	defer func() {
		sp.SetAttr("outcome", outcome)
		sp.End()
	}()
	msg, err := dnswire.Decode(wire)
	if err != nil || msg.Header.Response || len(msg.Questions) != 1 {
		s.countError()
		return nil
	}
	q := msg.Questions[0]
	sp.SetAttr("name", string(q.Name))
	sp.SetAttr("type", q.Type.String())
	s.Stats.Queries.Add(1)
	if s.mQueries != nil {
		s.mQueries.Inc()
	}
	if s.QueryLog != nil {
		s.QueryLog(q, from)
	}

	s.mu.RLock()
	policy := s.policy
	s.mu.RUnlock()
	if !policy(q, from) {
		s.Stats.Dropped.Add(1)
		if s.mDropped != nil {
			s.mDropped.Inc()
		}
		outcome = "dropped"
		return nil
	}

	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID:               msg.Header.ID,
			Response:         true,
			Opcode:           msg.Header.Opcode,
			Authoritative:    true,
			RecursionDesired: msg.Header.RecursionDesired,
		},
		Questions: msg.Questions,
	}
	s.mu.RLock()
	zone := s.zoneFor(q.Name)
	if zone == "" {
		resp.Header.RCode = dnswire.RCodeRefused
		resp.Header.Authoritative = false
	} else if answers := s.records[recordKey{q.Name, q.Type}]; len(answers) > 0 {
		resp.Answers = append(resp.Answers, answers...)
	} else if s.nameExistsLocked(q.Name) {
		// NODATA: empty answer, SOA in authority.
		resp.Authority = append(resp.Authority, s.records[recordKey{zone, dnswire.TypeSOA}]...)
	} else {
		resp.Header.RCode = dnswire.RCodeNXDomain
		resp.Authority = append(resp.Authority, s.records[recordKey{zone, dnswire.TypeSOA}]...)
	}
	s.mu.RUnlock()

	// EDNS0: honor the client's advertised payload size and echo an OPT
	// record advertising ours (RFC 6891).
	size := msg.UDPSize()
	if size > 512 {
		resp.AddOPT(4096)
	}
	var out []byte
	if udp {
		out, err = dnswire.EncodeUDPSize(resp, size)
	} else {
		out, err = dnswire.Encode(resp)
	}
	if err != nil {
		s.countError()
		return nil
	}
	s.Stats.Answered.Add(1)
	if s.mResponses != nil {
		s.mResponses.With(resp.Header.RCode.String()).Inc()
	}
	outcome = resp.Header.RCode.String()
	return out
}

// countError bumps both the legacy stats block and the obs counter.
func (s *Server) countError() {
	s.Stats.Errors.Add(1)
	if s.mErrors != nil {
		s.mErrors.Inc()
	}
}

// nameExistsLocked reports whether any record type exists at name.
func (s *Server) nameExistsLocked(name dnsname.Name) bool {
	for key := range s.records {
		if key.name == name {
			return true
		}
	}
	return false
}
