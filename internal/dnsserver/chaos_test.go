// Chaos test: the stub resolver against the authoritative server with a
// seeded fault plan dropping and delaying datagrams between them. UDP
// loss shows up as a read timeout, so every lookup must converge through
// the stub's retry loop.
package dnsserver

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

func TestChaosStubRecoversFromDatagramLoss(t *testing.T) {
	_, stub := startServer(t, nil)

	// 25% of sends are silently dropped and a further 15% of operations
	// stall briefly — comfortably past the 20% fault floor the retry
	// path must absorb.
	base := faults.FaultyDialer(nil, faults.Plan{
		Seed:      5,
		DropRate:  0.25,
		DelayRate: 0.15,
		Delay:     2 * time.Millisecond,
	})
	var mu sync.Mutex
	var conns []*faults.Conn
	stub.Dialer = func(ctx context.Context, network, addr string) (net.Conn, error) {
		c, err := base(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		conns = append(conns, c.(*faults.Conn))
		mu.Unlock()
		return c, nil
	}
	stub.Timeout = 100 * time.Millisecond
	stub.Retries = 15

	const lookups = 30
	for i := 0; i < lookups; i++ {
		addrs, err := stub.LookupA(ctx(t), "victim.edu")
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		if len(addrs) != 1 || addrs[0] != "198.51.100.99" {
			t.Fatalf("lookup %d: addrs = %v", i, addrs)
		}
	}

	var drops, delays int64
	mu.Lock()
	for _, c := range conns {
		drops += c.Drops()
		delays += c.Delays()
	}
	attempts := len(conns)
	mu.Unlock()
	if drops == 0 {
		t.Fatal("drop schedule never fired; the retry path went untested")
	}
	t.Logf("%d lookups over %d attempts: %d datagrams dropped, %d ops delayed",
		lookups, attempts, drops, delays)
}
