// Integration tests exercising the authoritative server and the stub
// resolver over real UDP sockets.
package dnsserver

import (
	"context"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/dnsname"
	"repro/internal/dnswire"
	"repro/internal/obs"
	"repro/internal/resolve"
)

func startServer(t *testing.T, policy Policy) (*Server, *resolve.Stub) {
	t.Helper()
	srv := New(policy)
	srv.AddZone("dropthishost-test.biz")
	srv.AddZone("victim.edu")
	if err := srv.AddA("victim.edu", netip.MustParseAddr("198.51.100.99")); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddA(dnsname.Join("www", "victim.edu"), netip.MustParseAddr("198.51.100.98")); err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(pc) }()
	t.Cleanup(func() { srv.Close() })
	stub := &resolve.Stub{Server: pc.LocalAddr().String(), Timeout: 250 * time.Millisecond, Retries: 1}
	return srv, stub
}

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestAnswersAQuery(t *testing.T) {
	srv, stub := startServer(t, nil)
	addrs, err := stub.LookupA(ctx(t), "victim.edu")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != "198.51.100.99" {
		t.Fatalf("addrs = %v", addrs)
	}
	if srv.Stats.Answered.Load() != 1 {
		t.Errorf("answered = %d", srv.Stats.Answered.Load())
	}
}

func TestNXDomain(t *testing.T) {
	_, stub := startServer(t, nil)
	_, err := stub.LookupA(ctx(t), "missing.victim.edu")
	var nx *resolve.NXDomainError
	if !asNX(err, &nx) {
		t.Fatalf("err = %v, want NXDomainError", err)
	}
}

func asNX(err error, target **resolve.NXDomainError) bool {
	nx, ok := err.(*resolve.NXDomainError)
	if ok {
		*target = nx
	}
	return ok
}

func TestNoDataReturnsEmptyWithSOA(t *testing.T) {
	_, stub := startServer(t, nil)
	resp, err := stub.Query(ctx(t), "victim.edu", dnswire.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNoError || len(resp.Answers) != 0 {
		t.Fatalf("NODATA response: %+v", resp.Header)
	}
	if len(resp.Authority) == 0 || resp.Authority[0].Type != dnswire.TypeSOA {
		t.Fatalf("authority = %+v", resp.Authority)
	}
}

func TestRefusedOutsideZones(t *testing.T) {
	_, stub := startServer(t, nil)
	resp, err := stub.Query(ctx(t), "unrelated.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
}

func TestPolicyDropsSilently(t *testing.T) {
	srv, stub := startServer(t, func(dnswire.Question, netip.AddrPort) bool { return false })
	_, err := stub.LookupA(ctx(t), "victim.edu")
	if err == nil {
		t.Fatal("expected timeout when policy drops everything")
	}
	if srv.Stats.Dropped.Load() == 0 || srv.Stats.Answered.Load() != 0 {
		t.Errorf("stats: dropped=%d answered=%d", srv.Stats.Dropped.Load(), srv.Stats.Answered.Load())
	}
}

func TestPrefixPolicy(t *testing.T) {
	srv, stub := startServer(t, AnswerOnlyPrefix(netip.MustParsePrefix("203.0.113.0/24")))
	if _, err := stub.LookupA(ctx(t), "victim.edu"); err == nil {
		t.Fatal("loopback should be outside the allowed prefix")
	}
	srv.SetPolicy(AnswerOnlyPrefix(netip.MustParsePrefix("127.0.0.0/8")))
	addrs, err := stub.LookupA(ctx(t), "victim.edu")
	if err != nil || len(addrs) != 1 {
		t.Fatalf("after widening policy: %v %v", addrs, err)
	}
}

func TestQueryLogSeesDroppedQueries(t *testing.T) {
	// Build the server by hand so QueryLog is installed before the
	// serve goroutine starts (the field is read without locking).
	srv := New(func(dnswire.Question, netip.AddrPort) bool { return false })
	var mu sync.Mutex
	var seen []dnsname.Name
	srv.QueryLog = func(q dnswire.Question, _ netip.AddrPort) {
		mu.Lock()
		seen = append(seen, q.Name)
		mu.Unlock()
	}
	srv.AddZone("victim.edu")
	if err := srv.AddA(dnsname.Join("www", "victim.edu"), netip.MustParseAddr("198.51.100.98")); err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(pc) }()
	t.Cleanup(func() { srv.Close() })
	stub := &resolve.Stub{Server: pc.LocalAddr().String(), Timeout: 250 * time.Millisecond, Retries: 1}

	_, _ = stub.LookupA(ctx(t), "www.victim.edu")
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		logged := append([]dnsname.Name(nil), seen...)
		mu.Unlock()
		if len(logged) > 0 {
			if logged[0] != "www.victim.edu" {
				t.Fatalf("query log = %v", logged)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("query log never received the dropped query")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAddRecordOutsideZone(t *testing.T) {
	srv := New(nil)
	srv.AddZone("example.com")
	if err := srv.AddA("other.net", netip.MustParseAddr("192.0.2.1")); err == nil {
		t.Fatal("record outside zones should be rejected")
	}
}

func TestMalformedDatagramIgnored(t *testing.T) {
	srv, stub := startServer(t, nil)
	conn, err := net.Dial("udp", stub.Server)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// The server must survive; a valid query afterwards still works.
	addrs, err := stub.LookupA(ctx(t), "victim.edu")
	if err != nil || len(addrs) != 1 {
		t.Fatalf("after garbage: %v %v", addrs, err)
	}
	if srv.Stats.Errors.Load() == 0 {
		t.Error("malformed datagram not counted")
	}
}

func TestTCPFallbackOnTruncation(t *testing.T) {
	srv := New(nil)
	srv.AddZone("big.example")
	// Enough TXT data to exceed the 512-octet UDP limit.
	for i := 0; i < 10; i++ {
		if err := srv.AddRecord(dnswire.Record{
			Name: "big.example", Type: dnswire.TypeTXT,
			Text: []string{string(make([]byte, 200))},
		}); err != nil {
			t.Fatal(err)
		}
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(pc) }()
	go func() { _ = srv.ServeTCP(ln) }()
	t.Cleanup(func() { srv.Close() })

	// Without fallback: the UDP answer is truncated and empty.
	noFallback := &resolve.Stub{Server: pc.LocalAddr().String(), NoTCPFallback: true,
		Timeout: 300 * time.Millisecond}
	resp, err := noFallback.Query(ctx(t), "big.example", dnswire.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Truncated || len(resp.Answers) != 0 {
		t.Fatalf("expected truncated empty UDP answer, got %d answers", len(resp.Answers))
	}

	// With fallback: the full answer arrives over TCP.
	stub := &resolve.Stub{Server: pc.LocalAddr().String(), TCPServer: ln.Addr().String(),
		Timeout: 500 * time.Millisecond}
	resp, err = stub.Query(ctx(t), "big.example", dnswire.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Truncated || len(resp.Answers) != 10 {
		t.Fatalf("TCP fallback: truncated=%v answers=%d", resp.Header.Truncated, len(resp.Answers))
	}
}

func TestTCPPolicyDropKeepsConnection(t *testing.T) {
	srv, _ := startServer(t, func(dnswire.Question, netip.AddrPort) bool { return false })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.ServeTCP(ln) }()

	stub := &resolve.Stub{Server: ln.Addr().String(), Timeout: 200 * time.Millisecond, Retries: 0}
	// Direct TCP exchange times out silently under the deny-all policy.
	if _, err := stub.Query(ctx(t), "victim.edu", dnswire.TypeA); err == nil {
		t.Fatal("policy drop should yield no UDP answer either")
	}
}

func TestEDNS0LargeUDPAnswer(t *testing.T) {
	srv := New(nil)
	srv.AddZone("edns.example")
	for i := 0; i < 6; i++ {
		if err := srv.AddRecord(dnswire.Record{
			Name: "edns.example", Type: dnswire.TypeTXT,
			Text: []string{string(make([]byte, 200))},
		}); err != nil {
			t.Fatal(err)
		}
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(pc) }()
	t.Cleanup(func() { srv.Close() })

	// Classic 512-octet client: truncated.
	classic := &resolve.Stub{Server: pc.LocalAddr().String(), NoTCPFallback: true,
		Timeout: 300 * time.Millisecond}
	resp, err := classic.Query(ctx(t), "edns.example", dnswire.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Truncated {
		t.Fatal("classic client should see TC")
	}

	// EDNS0 client advertising 4096: the full answer fits in one datagram.
	edns := &resolve.Stub{Server: pc.LocalAddr().String(), NoTCPFallback: true,
		AdvertiseUDPSize: 4096, Timeout: 300 * time.Millisecond}
	resp, err = edns.Query(ctx(t), "edns.example", dnswire.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Truncated || len(resp.Answers) != 6 {
		t.Fatalf("EDNS0 answer: truncated=%v answers=%d", resp.Header.Truncated, len(resp.Answers))
	}
	// The server echoes an OPT record.
	hasOPT := false
	for _, r := range resp.Additional {
		if r.Type == dnswire.TypeOPT {
			hasOPT = true
		}
	}
	if !hasOPT {
		t.Error("response missing OPT record")
	}
}

// TestInstrumentedCounters checks the obs mirror of the stats block,
// including the per-rcode response breakdown.
func TestInstrumentedCounters(t *testing.T) {
	reg := obs.NewRegistry()
	srv := New(nil)
	srv.Instrument(reg)
	srv.AddZone("victim.edu")
	if err := srv.AddA("victim.edu", netip.MustParseAddr("198.51.100.99")); err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(pc) }()
	t.Cleanup(func() { srv.Close() })
	stub := &resolve.Stub{Server: pc.LocalAddr().String(), Timeout: 250 * time.Millisecond, Retries: 1}

	if _, err := stub.LookupA(ctx(t), "victim.edu"); err != nil {
		t.Fatal(err)
	}
	if _, err := stub.LookupA(ctx(t), "ghost.victim.edu"); err == nil {
		t.Fatal("expected NXDOMAIN")
	}
	if got := reg.Counter(MetricQueries, "").Value(); got != 2 {
		t.Errorf("queries = %d, want 2", got)
	}
	responses := reg.CounterVec(MetricResponses, "", "rcode")
	if got := responses.With("NOERROR").Value(); got != 1 {
		t.Errorf("NOERROR responses = %d, want 1", got)
	}
	if got := responses.With("NXDOMAIN").Value(); got != 1 {
		t.Errorf("NXDOMAIN responses = %d, want 1", got)
	}
}
