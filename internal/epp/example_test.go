package epp_test

import (
	"fmt"

	"repro/internal/dates"
	"repro/internal/epp"
)

// Example walks the exact Figure 1 scenario: EPP's consistency rules
// block deleting foo.com, so registrar A renames the referenced host
// into an external namespace — silently rewriting bar.com's delegation.
func Example() {
	repo := epp.NewRepository("Verisign", "com", "net", "edu", "gov")
	day := dates.FromYMD(2019, 7, 1)
	expiry := day.AddYears(1)

	repo.CreateDomain("registrar-a", "foo.com", day, expiry)
	repo.CreateHost("registrar-a", "ns2.foo.com", day)
	repo.CreateDomain("registrar-b", "bar.com", day, expiry)
	repo.SetDomainNS("registrar-b", "bar.com", "ns2.foo.com")

	// RFC 5731: the domain cannot be deleted while subordinate host
	// objects exist.
	fmt.Println(repo.DeleteDomain("registrar-a", "foo.com"))
	// RFC 5732: the host cannot be deleted while bar.com links to it.
	fmt.Println(repo.DeleteHost("registrar-a", "ns2.foo.com"))

	// The workaround: rename into a namespace this repository does not
	// manage. No fooxxxx.biz object exists anywhere — EPP allows it.
	fmt.Println(repo.RenameHost("registrar-a", "ns2.foo.com", "ns2.fooxxxx.biz"))
	fmt.Println(repo.DeleteDomain("registrar-a", "foo.com"))

	d, _ := repo.DomainInfo("bar.com")
	fmt.Println("bar.com now delegates to:", repo.NSNames(d))
	// Output:
	// epp: 2305 domain foo.com has 1 subordinate host object(s)
	// epp: 2305 host ns2.foo.com linked by 1 domain(s)
	// <nil>
	// <nil>
	// bar.com now delegates to: [ns2.fooxxxx.biz]
}
