// Package epp implements an EPP object repository after RFC 5730 (EPP),
// RFC 5731 (domain mapping), and RFC 5732 (host mapping).
//
// A Repository holds domain objects and host objects for the set of TLD
// namespaces one registry backend manages (e.g. Verisign's repository
// backs .com, .net, .edu, and .gov together). The package enforces the
// object-relationship rules whose interaction produces the paper's
// vulnerability:
//
//   - A domain object cannot be deleted while subordinate host objects
//     exist (RFC 5731 §3.2.2).
//   - A host object cannot be deleted while domain objects delegate to it
//     (RFC 5732 §3.2.2).
//   - A host object may be RENAMED; internal names require an existing
//     superordinate domain, but names under a TLD the repository does not
//     manage are external: the repository "declares no authority" and the
//     rename is accepted without any existence check (RFC 5732 §1.1).
//   - Sponsorship isolation: only the sponsoring registrar may mutate an
//     object (RFC 5730 §2.9.3).
//
// Domain delegations reference host objects by repository object ID
// (ROID), mirroring production registry schemas. Renaming a host object
// therefore silently rewrites the published NS records of every linked
// domain — the mechanism behind sacrificial nameservers.
package epp

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/dates"
	"repro/internal/dnsname"
)

// RegistrarID identifies a registrar account at a registry.
type RegistrarID string

// ROID is a repository object identifier (RFC 5730 §2.8).
type ROID string

// ResultCode is an EPP result code (RFC 5730 §3).
type ResultCode int

// EPP result codes used by this repository.
const (
	CodeSuccess              ResultCode = 1000
	CodeUnimplemented        ResultCode = 2101
	CodeAuthorizationError   ResultCode = 2201
	CodeObjectExists         ResultCode = 2302
	CodeObjectDoesNotExist   ResultCode = 2303
	CodeStatusProhibits      ResultCode = 2304
	CodeAssociationProhibits ResultCode = 2305
	CodeParameterPolicy      ResultCode = 2306
)

// Error is an EPP command failure carrying its protocol result code.
type Error struct {
	Code ResultCode
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("epp: %d %s", e.Code, e.Msg) }

func errf(code ResultCode, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the EPP result code from an error, or 0 if err is not an
// EPP error.
func CodeOf(err error) ResultCode {
	if e, ok := err.(*Error); ok {
		return e.Code
	}
	return 0
}

// Domain is a domain object (RFC 5731).
type Domain struct {
	Name    dnsname.Name
	ROID    ROID
	Sponsor RegistrarID
	Created dates.Day
	Expiry  dates.Day
	// AuthInfo is the transfer-authorization password (RFC 5731 §3.2.1);
	// empty means transfers are impossible.
	AuthInfo string
	nsHosts  []ROID // delegation targets, by host object
}

// Host is a host object (RFC 5732). Superordinate is the ROID of the
// in-repository parent domain, or "" for an external host.
type Host struct {
	Name          dnsname.Name
	ROID          ROID
	Sponsor       RegistrarID
	Created       dates.Day
	Superordinate ROID
	Addrs         []netip.Addr
}

// External reports whether the host name lies outside every namespace the
// repository manages.
func (h *Host) External() bool { return h.Superordinate == "" }

// Repository is an EPP object repository for one registry backend.
// The zero value is not usable; call NewRepository.
//
// Repository is not safe for concurrent use; the simulation drives each
// repository from a single goroutine, and the EPP server serializes
// commands per repository.
type Repository struct {
	id   string
	tlds map[dnsname.Name]bool

	domains       map[dnsname.Name]*Domain
	domainsByROID map[ROID]*Domain
	hosts         map[dnsname.Name]*Host
	hostsByROID   map[ROID]*Host

	// linkedDomains[hostROID] is the set of domains delegating to the host.
	linkedDomains map[ROID]map[dnsname.Name]bool
	// subordinates[domainROID] is the set of host objects under the domain.
	subordinates map[ROID]map[ROID]bool

	// transfers tracks pending registrar-to-registrar transfers;
	// pollQueues holds per-registrar service messages (transfer.go).
	transfers  map[dnsname.Name]pendingTransfer
	pollQueues map[RegistrarID][]PollMessage
	nextPollID int

	nextROID int
}

// NewRepository creates a repository identified by id managing the given
// TLD namespaces.
func NewRepository(id string, tlds ...dnsname.Name) *Repository {
	r := &Repository{
		id:            id,
		tlds:          make(map[dnsname.Name]bool, len(tlds)),
		domains:       make(map[dnsname.Name]*Domain),
		domainsByROID: make(map[ROID]*Domain),
		hosts:         make(map[dnsname.Name]*Host),
		hostsByROID:   make(map[ROID]*Host),
		linkedDomains: make(map[ROID]map[dnsname.Name]bool),
		subordinates:  make(map[ROID]map[ROID]bool),
	}
	for _, tld := range tlds {
		r.tlds[tld] = true
	}
	return r
}

// ID returns the repository identifier.
func (r *Repository) ID() string { return r.id }

// TLDs returns the managed TLD namespaces in sorted order.
func (r *Repository) TLDs() []dnsname.Name {
	out := make([]dnsname.Name, 0, len(r.tlds))
	for tld := range r.tlds {
		out = append(out, tld)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Manages reports whether name falls under a TLD this repository manages.
func (r *Repository) Manages(name dnsname.Name) bool {
	return r.tlds[name.TLD()]
}

func (r *Repository) newROID(kind byte) ROID {
	r.nextROID++
	return ROID(fmt.Sprintf("%c%d-%s", kind, r.nextROID, r.id))
}

// superordinateOf returns the domain object an internal host name would be
// subordinate to, or nil if the registered domain does not exist.
func (r *Repository) superordinateOf(host dnsname.Name) *Domain {
	reg, ok := dnsname.RegisteredDomain(host)
	if !ok {
		return nil
	}
	return r.domains[reg]
}

// CreateDomain provisions a domain object sponsored by registrar, expiring
// on expiry. The name must be available and inside a managed namespace.
func (r *Repository) CreateDomain(registrar RegistrarID, name dnsname.Name, created, expiry dates.Day) (*Domain, error) {
	if !r.Manages(name) {
		return nil, errf(CodeParameterPolicy, "domain %s outside repository %s namespaces", name, r.id)
	}
	if reg, ok := dnsname.RegisteredDomain(name); !ok || reg != name {
		return nil, errf(CodeParameterPolicy, "domain %s is not a registrable name", name)
	}
	if _, exists := r.domains[name]; exists {
		return nil, errf(CodeObjectExists, "domain %s already exists", name)
	}
	d := &Domain{
		Name:    name,
		ROID:    r.newROID('D'),
		Sponsor: registrar,
		Created: created,
		Expiry:  expiry,
	}
	r.domains[name] = d
	r.domainsByROID[d.ROID] = d
	return d, nil
}

// DomainInfo returns the domain object for name, or an EPP 2303 error.
func (r *Repository) DomainInfo(name dnsname.Name) (*Domain, error) {
	d, ok := r.domains[name]
	if !ok {
		return nil, errf(CodeObjectDoesNotExist, "domain %s does not exist", name)
	}
	return d, nil
}

// DomainExists reports whether a domain object exists for name.
func (r *Repository) DomainExists(name dnsname.Name) bool {
	_, ok := r.domains[name]
	return ok
}

// HostInfo returns the host object for name, or an EPP 2303 error.
func (r *Repository) HostInfo(name dnsname.Name) (*Host, error) {
	h, ok := r.hosts[name]
	if !ok {
		return nil, errf(CodeObjectDoesNotExist, "host %s does not exist", name)
	}
	return h, nil
}

// HostExists reports whether a host object exists for name.
func (r *Repository) HostExists(name dnsname.Name) bool {
	_, ok := r.hosts[name]
	return ok
}

// CreateHost provisions a host object. Internal host names (inside a
// managed namespace) require an existing superordinate domain sponsored by
// the same registrar, and may carry glue addresses. External host names
// carry no addresses (RFC 5732 §1.1).
func (r *Repository) CreateHost(registrar RegistrarID, name dnsname.Name, created dates.Day, addrs ...netip.Addr) (*Host, error) {
	if _, exists := r.hosts[name]; exists {
		return nil, errf(CodeObjectExists, "host %s already exists", name)
	}
	h := &Host{
		Name:    name,
		ROID:    r.newROID('H'),
		Sponsor: registrar,
		Created: created,
	}
	if r.Manages(name) {
		super := r.superordinateOf(name)
		if super == nil {
			return nil, errf(CodeParameterPolicy, "superordinate domain of %s does not exist", name)
		}
		if super.Sponsor != registrar {
			return nil, errf(CodeAuthorizationError, "host %s: superordinate domain sponsored by %s", name, super.Sponsor)
		}
		h.Superordinate = super.ROID
		h.Addrs = append(h.Addrs, addrs...)
		r.subordinate(super.ROID)[h.ROID] = true
	} else if len(addrs) > 0 {
		return nil, errf(CodeParameterPolicy, "external host %s cannot carry addresses", name)
	}
	r.hosts[name] = h
	r.hostsByROID[h.ROID] = h
	return h, nil
}

func (r *Repository) subordinate(domainROID ROID) map[ROID]bool {
	m := r.subordinates[domainROID]
	if m == nil {
		m = make(map[ROID]bool)
		r.subordinates[domainROID] = m
	}
	return m
}

func (r *Repository) links(hostROID ROID) map[dnsname.Name]bool {
	m := r.linkedDomains[hostROID]
	if m == nil {
		m = make(map[dnsname.Name]bool)
		r.linkedDomains[hostROID] = m
	}
	return m
}

// DeleteHost removes a host object. It fails with EPP 2305 while any
// domain delegates to the host (RFC 5732 §3.2.2) and with 2201 when the
// caller does not sponsor the object.
func (r *Repository) DeleteHost(registrar RegistrarID, name dnsname.Name) error {
	h, ok := r.hosts[name]
	if !ok {
		return errf(CodeObjectDoesNotExist, "host %s does not exist", name)
	}
	if h.Sponsor != registrar {
		return errf(CodeAuthorizationError, "host %s sponsored by %s", name, h.Sponsor)
	}
	if n := len(r.linkedDomains[h.ROID]); n > 0 {
		return errf(CodeAssociationProhibits, "host %s linked by %d domain(s)", name, n)
	}
	if h.Superordinate != "" {
		delete(r.subordinates[h.Superordinate], h.ROID)
	}
	delete(r.hosts, name)
	delete(r.hostsByROID, h.ROID)
	delete(r.linkedDomains, h.ROID)
	return nil
}

// RenameHost changes a host object's name (RFC 5732 <host:update> with
// <host:chg><host:name>). The caller must sponsor the host. Rules:
//
//   - A rename to an internal name requires the new superordinate domain
//     to exist (and be sponsored by the caller).
//   - A rename to an EXTERNAL name — any TLD this repository does not
//     manage — is accepted with no existence check. This is the loophole
//     registrars exploit to create sacrificial nameservers.
//   - A host renamed to an external name loses its glue addresses.
//   - The new name must not collide with an existing host object.
//
// Every domain delegating to the host keeps its link: the published NS
// records of those domains change silently.
func (r *Repository) RenameHost(registrar RegistrarID, oldName, newName dnsname.Name) error {
	h, ok := r.hosts[oldName]
	if !ok {
		return errf(CodeObjectDoesNotExist, "host %s does not exist", oldName)
	}
	if h.Sponsor != registrar {
		return errf(CodeAuthorizationError, "host %s sponsored by %s", oldName, h.Sponsor)
	}
	if h.External() {
		// Production registries reject updates to external hosts: the
		// repository has no authority over the name.
		return errf(CodeStatusProhibits, "host %s is external and cannot be modified", oldName)
	}
	if _, exists := r.hosts[newName]; exists {
		return errf(CodeObjectExists, "host %s already exists", newName)
	}
	if oldName == newName {
		return nil
	}
	// Validate the destination fully before mutating anything: a failed
	// rename must leave the host object untouched.
	var newSuper *Domain
	if r.Manages(newName) {
		newSuper = r.superordinateOf(newName)
		if newSuper == nil {
			return errf(CodeParameterPolicy, "superordinate domain of %s does not exist", newName)
		}
		if newSuper.Sponsor != registrar {
			return errf(CodeAuthorizationError, "host %s: superordinate domain sponsored by %s", newName, newSuper.Sponsor)
		}
	}
	// Detach from the old superordinate and attach to the new one.
	if h.Superordinate != "" {
		delete(r.subordinates[h.Superordinate], h.ROID)
		h.Superordinate = ""
	}
	if newSuper != nil {
		h.Superordinate = newSuper.ROID
		r.subordinate(newSuper.ROID)[h.ROID] = true
	} else {
		// External namespace: "the repository declares no authority over it
		// and lets the rename take place." Glue cannot follow.
		h.Addrs = nil
	}
	delete(r.hosts, oldName)
	h.Name = newName
	r.hosts[newName] = h
	return nil
}

// DeleteDomain removes a domain object. It fails with EPP 2305 while
// subordinate host objects exist (RFC 5731 §3.2.2) and with 2201 when the
// caller does not sponsor the object. Delegations from OTHER domains to
// this domain's hosts do not block deletion — only the host objects do —
// which is precisely why registrars rename them first.
func (r *Repository) DeleteDomain(registrar RegistrarID, name dnsname.Name) error {
	d, ok := r.domains[name]
	if !ok {
		return errf(CodeObjectDoesNotExist, "domain %s does not exist", name)
	}
	if d.Sponsor != registrar {
		return errf(CodeAuthorizationError, "domain %s sponsored by %s", name, d.Sponsor)
	}
	if n := len(r.subordinates[d.ROID]); n > 0 {
		return errf(CodeAssociationProhibits, "domain %s has %d subordinate host object(s)", name, n)
	}
	// Unlink the domain's own outbound delegations.
	for _, roid := range d.nsHosts {
		delete(r.linkedDomains[roid], name)
	}
	delete(r.domains, name)
	delete(r.domainsByROID, d.ROID)
	delete(r.subordinates, d.ROID)
	delete(r.transfers, name)
	return nil
}

// CascadeDeleteDomain implements the paper's proposed EPP change (§7.3):
// deleting a domain also removes every reference to its subordinate host
// objects — the delegations of OTHER domains included — and then the
// host objects themselves, so no dangling rename is ever needed. The
// sponsoring-registrar check still applies to the domain; the removal of
// foreign delegations is the protocol change (today EPP's isolation rule
// forbids exactly this, which is why sacrificial nameservers exist).
//
// Affected returns the domains whose delegations were trimmed, so the
// registry layer can publish the change.
func (r *Repository) CascadeDeleteDomain(registrar RegistrarID, name dnsname.Name) (affected map[dnsname.Name][]dnsname.Name, err error) {
	d, ok := r.domains[name]
	if !ok {
		return nil, errf(CodeObjectDoesNotExist, "domain %s does not exist", name)
	}
	if d.Sponsor != registrar {
		return nil, errf(CodeAuthorizationError, "domain %s sponsored by %s", name, d.Sponsor)
	}
	affected = make(map[dnsname.Name][]dnsname.Name)
	// Remove every delegation pointing at a subordinate host, then the
	// hosts themselves.
	for hostROID := range r.subordinates[d.ROID] {
		h := r.hostsByROID[hostROID]
		if h == nil {
			continue
		}
		for linked := range r.linkedDomains[hostROID] {
			ld := r.domains[linked]
			if ld == nil {
				continue
			}
			kept := ld.nsHosts[:0]
			for _, roid := range ld.nsHosts {
				if roid != hostROID {
					kept = append(kept, roid)
				}
			}
			ld.nsHosts = kept
			affected[linked] = append(affected[linked], h.Name)
		}
		delete(r.hosts, h.Name)
		delete(r.hostsByROID, hostROID)
		delete(r.linkedDomains, hostROID)
	}
	delete(r.subordinates, d.ROID)
	// Finally, the domain itself (its own outbound links first).
	for _, roid := range d.nsHosts {
		delete(r.linkedDomains[roid], name)
	}
	delete(affected, name) // the dying domain's own trimmed delegation is moot
	delete(r.domains, name)
	delete(r.domainsByROID, d.ROID)
	delete(r.transfers, name)
	return affected, nil
}

// SetDomainNS replaces the delegation of a domain with the given host
// names. Every host must exist as a host object (RFC 5731 §1.1). Only the
// sponsoring registrar may change the delegation.
func (r *Repository) SetDomainNS(registrar RegistrarID, name dnsname.Name, hosts ...dnsname.Name) error {
	d, ok := r.domains[name]
	if !ok {
		return errf(CodeObjectDoesNotExist, "domain %s does not exist", name)
	}
	if d.Sponsor != registrar {
		return errf(CodeAuthorizationError, "domain %s sponsored by %s", name, d.Sponsor)
	}
	roids := make([]ROID, 0, len(hosts))
	for _, hn := range hosts {
		h, ok := r.hosts[hn]
		if !ok {
			return errf(CodeAssociationProhibits, "host %s does not exist", hn)
		}
		roids = append(roids, h.ROID)
	}
	for _, roid := range d.nsHosts {
		delete(r.linkedDomains[roid], name)
	}
	d.nsHosts = roids
	for _, roid := range roids {
		r.links(roid)[name] = true
	}
	return nil
}

// RenewDomain extends a domain's expiry date.
func (r *Repository) RenewDomain(registrar RegistrarID, name dnsname.Name, newExpiry dates.Day) error {
	d, ok := r.domains[name]
	if !ok {
		return errf(CodeObjectDoesNotExist, "domain %s does not exist", name)
	}
	if d.Sponsor != registrar {
		return errf(CodeAuthorizationError, "domain %s sponsored by %s", name, d.Sponsor)
	}
	if newExpiry <= d.Expiry {
		return errf(CodeParameterPolicy, "renewal must extend expiry")
	}
	d.Expiry = newExpiry
	return nil
}

// TransferDomain moves sponsorship of a domain to another registrar.
func (r *Repository) TransferDomain(name dnsname.Name, to RegistrarID) error {
	d, ok := r.domains[name]
	if !ok {
		return errf(CodeObjectDoesNotExist, "domain %s does not exist", name)
	}
	d.Sponsor = to
	return nil
}

// NSNames returns the current delegation of d as host names.
func (r *Repository) NSNames(d *Domain) []dnsname.Name {
	out := make([]dnsname.Name, 0, len(d.nsHosts))
	for _, roid := range d.nsHosts {
		if h := r.hostsByROID[roid]; h != nil {
			out = append(out, h.Name)
		}
	}
	return out
}

// LinkedDomains returns the names of domains delegating to the host, in
// sorted order.
func (r *Repository) LinkedDomains(host dnsname.Name) []dnsname.Name {
	h, ok := r.hosts[host]
	if !ok {
		return nil
	}
	set := r.linkedDomains[h.ROID]
	out := make([]dnsname.Name, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SubordinateHosts returns the host objects subordinate to domain, sorted.
func (r *Repository) SubordinateHosts(domain dnsname.Name) []*Host {
	d, ok := r.domains[domain]
	if !ok {
		return nil
	}
	var out []*Host
	for roid := range r.subordinates[d.ROID] {
		if h := r.hostsByROID[roid]; h != nil {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Domains iterates all domain objects in unspecified order.
func (r *Repository) Domains(fn func(*Domain) bool) {
	for _, d := range r.domains {
		if !fn(d) {
			return
		}
	}
}

// Hosts iterates all host objects in unspecified order.
func (r *Repository) Hosts(fn func(*Host) bool) {
	for _, h := range r.hosts {
		if !fn(h) {
			return
		}
	}
}

// NumDomains returns the number of domain objects.
func (r *Repository) NumDomains() int { return len(r.domains) }

// NumHosts returns the number of host objects.
func (r *Repository) NumHosts() int { return len(r.hosts) }
