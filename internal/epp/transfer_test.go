package epp

import "testing"

func setupTransferable(t *testing.T) *Repository {
	t.Helper()
	r := verisign()
	if _, err := r.CreateDomain("losing", "moving.com", day0, expiry); err != nil {
		t.Fatal(err)
	}
	if err := r.SetAuthInfo("losing", "moving.com", "s3cret"); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTransferRequestAuthInfo(t *testing.T) {
	r := setupTransferable(t)
	wantCode(t, r.RequestTransfer("gaining", "moving.com", "wrong", day0), CodeAuthorizationError)
	wantCode(t, r.RequestTransfer("gaining", "ghost.com", "s3cret", day0), CodeObjectDoesNotExist)
	wantCode(t, r.RequestTransfer("losing", "moving.com", "s3cret", day0), CodeParameterPolicy)
	if err := r.RequestTransfer("gaining", "moving.com", "s3cret", day0); err != nil {
		t.Fatal(err)
	}
	// A second request while one is pending is refused.
	wantCode(t, r.RequestTransfer("third", "moving.com", "s3cret", day0), CodeStatusProhibits)
	state, to := r.TransferStatus("moving.com")
	if state != TransferPending || to != "gaining" {
		t.Fatalf("status = %v, %s", state, to)
	}
}

func TestTransferApprove(t *testing.T) {
	r := setupTransferable(t)
	if err := r.RequestTransfer("gaining", "moving.com", "s3cret", day0); err != nil {
		t.Fatal(err)
	}
	// Only the losing registrar may approve.
	wantCode(t, r.ApproveTransfer("bystander", "moving.com", day0.Add(1)), CodeAuthorizationError)
	if err := r.ApproveTransfer("losing", "moving.com", day0.Add(1)); err != nil {
		t.Fatal(err)
	}
	d, _ := r.DomainInfo("moving.com")
	if d.Sponsor != "gaining" {
		t.Fatalf("sponsor = %s", d.Sponsor)
	}
	if state, _ := r.TransferStatus("moving.com"); state != TransferNone {
		t.Error("transfer still pending after approval")
	}
	// Approving again fails.
	wantCode(t, r.ApproveTransfer("gaining", "moving.com", day0.Add(2)), CodeStatusProhibits)
}

func TestTransferReject(t *testing.T) {
	r := setupTransferable(t)
	if err := r.RequestTransfer("gaining", "moving.com", "s3cret", day0); err != nil {
		t.Fatal(err)
	}
	if err := r.RejectTransfer("losing", "moving.com", day0.Add(1)); err != nil {
		t.Fatal(err)
	}
	d, _ := r.DomainInfo("moving.com")
	if d.Sponsor != "losing" {
		t.Fatalf("sponsor = %s", d.Sponsor)
	}
	// The gaining registrar learns via poll.
	msg, _, ok := r.PollRequest("gaining")
	for ok {
		if err := r.PollAck("gaining", msg.ID); err != nil {
			t.Fatal(err)
		}
		last := msg.Text
		msg, _, ok = r.PollRequest("gaining")
		if !ok && last == "" {
			t.Error("no rejection message delivered")
		}
	}
}

func TestTransferAutoAck(t *testing.T) {
	r := setupTransferable(t)
	if err := r.RequestTransfer("gaining", "moving.com", "s3cret", day0); err != nil {
		t.Fatal(err)
	}
	if done := r.AutoAckTransfers(day0.Add(3), 5); len(done) != 0 {
		t.Fatalf("auto-ack fired early: %v", done)
	}
	done := r.AutoAckTransfers(day0.Add(5), 5)
	if len(done) != 1 || done[0] != "moving.com" {
		t.Fatalf("auto-ack = %v", done)
	}
	d, _ := r.DomainInfo("moving.com")
	if d.Sponsor != "gaining" {
		t.Fatalf("sponsor = %s", d.Sponsor)
	}
}

func TestPollQueue(t *testing.T) {
	r := setupTransferable(t)
	if _, _, ok := r.PollRequest("losing"); ok {
		t.Fatal("fresh queue should be empty")
	}
	if err := r.RequestTransfer("gaining", "moving.com", "s3cret", day0); err != nil {
		t.Fatal(err)
	}
	msg, remaining, ok := r.PollRequest("losing")
	if !ok || remaining != 1 || msg.Day != day0 {
		t.Fatalf("poll = %+v, %d, %v", msg, remaining, ok)
	}
	// Poll without ack returns the same message (at-least-once delivery).
	again, _, _ := r.PollRequest("losing")
	if again.ID != msg.ID {
		t.Error("poll advanced without ack")
	}
	if err := r.PollAck("losing", msg.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := r.PollRequest("losing"); ok {
		t.Error("queue not empty after ack")
	}
	wantCode(t, r.PollAck("losing", 99999), CodeParameterPolicy)
}

func TestTransferClearedByDeletion(t *testing.T) {
	r := setupTransferable(t)
	if err := r.RequestTransfer("gaining", "moving.com", "s3cret", day0); err != nil {
		t.Fatal(err)
	}
	if err := r.DeleteDomain("losing", "moving.com"); err != nil {
		t.Fatal(err)
	}
	if state, _ := r.TransferStatus("moving.com"); state != TransferNone {
		t.Error("pending transfer survived deletion")
	}
}

func TestSetAuthInfoSponsorship(t *testing.T) {
	r := setupTransferable(t)
	wantCode(t, r.SetAuthInfo("stranger", "moving.com", "x"), CodeAuthorizationError)
	wantCode(t, r.SetAuthInfo("losing", "ghost.com", "x"), CodeObjectDoesNotExist)
}
