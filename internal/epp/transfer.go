package epp

import (
	"fmt"

	"repro/internal/dates"
	"repro/internal/dnsname"
)

// This file implements the registrar-driven transfer workflow of RFC
// 5730 §2.9.3.4 / RFC 5731 §3.2.4 — authInfo authorization, a pending
// state the losing registrar can approve or reject, and service
// messages delivered through the poll queue (RFC 5730 §2.9.2.3).
//
// The drop-catch of an expired domain (how dummyns.com changed hands in
// footnote 6) is the registry-operated TransferDomain; this workflow is
// the ordinary registrar-to-registrar path.

// TransferState describes a domain's transfer status.
type TransferState int

// Transfer states.
const (
	TransferNone TransferState = iota
	TransferPending
)

// pendingTransfer tracks an in-flight transfer request.
type pendingTransfer struct {
	to        RegistrarID
	requested dates.Day
}

// PollMessage is one service message awaiting a registrar.
type PollMessage struct {
	ID   int
	Day  dates.Day
	Text string
}

// SetAuthInfo sets a domain's transfer-authorization password. Only the
// sponsoring registrar may change it.
func (r *Repository) SetAuthInfo(registrar RegistrarID, name dnsname.Name, authInfo string) error {
	d, ok := r.domains[name]
	if !ok {
		return errf(CodeObjectDoesNotExist, "domain %s does not exist", name)
	}
	if d.Sponsor != registrar {
		return errf(CodeAuthorizationError, "domain %s sponsored by %s", name, d.Sponsor)
	}
	d.AuthInfo = authInfo
	return nil
}

// RequestTransfer starts a transfer of name to the gaining registrar.
// The request must carry the domain's authInfo (obtained from the
// registrant); a wrong authInfo is an authorization error. Both
// registrars receive poll messages.
func (r *Repository) RequestTransfer(gaining RegistrarID, name dnsname.Name, authInfo string, day dates.Day) error {
	d, ok := r.domains[name]
	if !ok {
		return errf(CodeObjectDoesNotExist, "domain %s does not exist", name)
	}
	if d.Sponsor == gaining {
		return errf(CodeParameterPolicy, "domain %s already sponsored by %s", name, gaining)
	}
	if d.AuthInfo == "" || d.AuthInfo != authInfo {
		return errf(CodeAuthorizationError, "domain %s: invalid authorization information", name)
	}
	if _, pending := r.transfers[name]; pending {
		return errf(CodeStatusProhibits, "domain %s: transfer already pending", name)
	}
	if r.transfers == nil {
		r.transfers = make(map[dnsname.Name]pendingTransfer)
	}
	r.transfers[name] = pendingTransfer{to: gaining, requested: day}
	r.enqueuePoll(d.Sponsor, day, fmt.Sprintf("Transfer of %s requested by %s", name, gaining))
	r.enqueuePoll(gaining, day, fmt.Sprintf("Transfer of %s pending approval by %s", name, d.Sponsor))
	return nil
}

// TransferStatus reports whether a transfer is pending for name, and to
// whom.
func (r *Repository) TransferStatus(name dnsname.Name) (TransferState, RegistrarID) {
	if p, ok := r.transfers[name]; ok {
		return TransferPending, p.to
	}
	return TransferNone, ""
}

// ApproveTransfer completes a pending transfer. Only the losing
// (current sponsoring) registrar may approve. Sponsorship moves to the
// gaining registrar and both parties are notified.
func (r *Repository) ApproveTransfer(losing RegistrarID, name dnsname.Name, day dates.Day) error {
	d, ok := r.domains[name]
	if !ok {
		return errf(CodeObjectDoesNotExist, "domain %s does not exist", name)
	}
	p, pending := r.transfers[name]
	if !pending {
		return errf(CodeStatusProhibits, "domain %s: no transfer pending", name)
	}
	if d.Sponsor != losing {
		return errf(CodeAuthorizationError, "domain %s sponsored by %s", name, d.Sponsor)
	}
	delete(r.transfers, name)
	d.Sponsor = p.to
	r.enqueuePoll(losing, day, fmt.Sprintf("Transfer of %s approved; now sponsored by %s", name, p.to))
	r.enqueuePoll(p.to, day, fmt.Sprintf("Transfer of %s completed", name))
	return nil
}

// RejectTransfer cancels a pending transfer. Only the losing registrar
// may reject; the gaining registrar is notified.
func (r *Repository) RejectTransfer(losing RegistrarID, name dnsname.Name, day dates.Day) error {
	d, ok := r.domains[name]
	if !ok {
		return errf(CodeObjectDoesNotExist, "domain %s does not exist", name)
	}
	p, pending := r.transfers[name]
	if !pending {
		return errf(CodeStatusProhibits, "domain %s: no transfer pending", name)
	}
	if d.Sponsor != losing {
		return errf(CodeAuthorizationError, "domain %s sponsored by %s", name, d.Sponsor)
	}
	delete(r.transfers, name)
	r.enqueuePoll(p.to, day, fmt.Sprintf("Transfer of %s rejected by %s", name, losing))
	return nil
}

// AutoAckTransfers approves every transfer pending longer than ackDays
// (registries auto-approve after five days when the losing registrar
// does not act, RFC 5731 §3.2.4). Returns the completed domain names.
func (r *Repository) AutoAckTransfers(day dates.Day, ackDays int) []dnsname.Name {
	var done []dnsname.Name
	for name, p := range r.transfers {
		if day.Sub(p.requested) < ackDays {
			continue
		}
		done = append(done, name)
	}
	for _, name := range done {
		p := r.transfers[name]
		d := r.domains[name]
		delete(r.transfers, name)
		if d == nil {
			continue
		}
		old := d.Sponsor
		d.Sponsor = p.to
		r.enqueuePoll(old, day, fmt.Sprintf("Transfer of %s auto-approved after %d days", name, ackDays))
		r.enqueuePoll(p.to, day, fmt.Sprintf("Transfer of %s completed", name))
	}
	return done
}

// enqueuePoll appends a service message to a registrar's poll queue.
func (r *Repository) enqueuePoll(to RegistrarID, day dates.Day, text string) {
	if r.pollQueues == nil {
		r.pollQueues = make(map[RegistrarID][]PollMessage)
	}
	r.nextPollID++
	r.pollQueues[to] = append(r.pollQueues[to], PollMessage{ID: r.nextPollID, Day: day, Text: text})
}

// PollRequest returns the oldest queued message for the registrar and
// the number of messages remaining in the queue (including the returned
// one), or ok=false when the queue is empty (RFC 5730 <poll op="req">).
func (r *Repository) PollRequest(registrar RegistrarID) (msg PollMessage, remaining int, ok bool) {
	q := r.pollQueues[registrar]
	if len(q) == 0 {
		return PollMessage{}, 0, false
	}
	return q[0], len(q), true
}

// PollAck removes the message with the given ID from the registrar's
// queue (RFC 5730 <poll op="ack">). Acking an unknown ID is an error.
func (r *Repository) PollAck(registrar RegistrarID, id int) error {
	q := r.pollQueues[registrar]
	for i, m := range q {
		if m.ID == id {
			r.pollQueues[registrar] = append(q[:i], q[i+1:]...)
			return nil
		}
	}
	return errf(CodeParameterPolicy, "no queued message with id %d", id)
}
