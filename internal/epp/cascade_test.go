package epp

import (
	"testing"
)

func TestCascadeDeleteRemovesForeignDelegations(t *testing.T) {
	r := setupFooBar(t)
	affected, err := r.CascadeDeleteDomain("A", "foo.com")
	if err != nil {
		t.Fatal(err)
	}
	// bar.com's delegation to ns2.foo.com was trimmed.
	if got := affected["bar.com"]; len(got) != 1 || got[0] != "ns2.foo.com" {
		t.Fatalf("affected = %+v", affected)
	}
	if r.DomainExists("foo.com") {
		t.Error("foo.com should be gone")
	}
	if r.HostExists("ns1.foo.com") || r.HostExists("ns2.foo.com") {
		t.Error("subordinate hosts should be gone")
	}
	d, err := r.DomainInfo("bar.com")
	if err != nil {
		t.Fatal(err)
	}
	if ns := r.NSNames(d); len(ns) != 0 {
		t.Fatalf("bar.com delegation not trimmed: %v", ns)
	}
	// No dangling references remain anywhere.
	r.Hosts(func(h *Host) bool {
		t.Errorf("unexpected surviving host %s", h.Name)
		return true
	})
}

func TestCascadeDeleteSponsorship(t *testing.T) {
	r := setupFooBar(t)
	if _, err := r.CascadeDeleteDomain("B", "foo.com"); CodeOf(err) != CodeAuthorizationError {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.CascadeDeleteDomain("A", "ghost.com"); CodeOf(err) != CodeObjectDoesNotExist {
		t.Fatalf("err = %v", err)
	}
	// The failed attempts changed nothing.
	if !r.DomainExists("foo.com") || !r.HostExists("ns2.foo.com") {
		t.Error("failed cascade mutated state")
	}
}

func TestCascadeDeleteKeepsUnrelatedObjects(t *testing.T) {
	r := setupFooBar(t)
	if _, err := r.CreateDomain("C", "other.com", day0, expiry); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateHost("C", "ns1.other.com", day0, addr); err != nil {
		t.Fatal(err)
	}
	if err := r.SetDomainNS("C", "other.com", "ns1.other.com"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CascadeDeleteDomain("A", "foo.com"); err != nil {
		t.Fatal(err)
	}
	if !r.DomainExists("other.com") || !r.HostExists("ns1.other.com") {
		t.Error("cascade touched unrelated objects")
	}
	d, _ := r.DomainInfo("other.com")
	if ns := r.NSNames(d); len(ns) != 1 {
		t.Errorf("unrelated delegation changed: %v", ns)
	}
}

func TestCascadeDeleteDomainWithoutHosts(t *testing.T) {
	r := verisign()
	if _, err := r.CreateDomain("A", "plain.com", day0, expiry); err != nil {
		t.Fatal(err)
	}
	affected, err := r.CascadeDeleteDomain("A", "plain.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 0 {
		t.Fatalf("affected = %+v", affected)
	}
	if r.DomainExists("plain.com") {
		t.Error("domain should be gone")
	}
}
