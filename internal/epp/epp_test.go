package epp

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"

	"repro/internal/dates"
	"repro/internal/dnsname"
)

var (
	day0   = dates.FromYMD(2015, 1, 1)
	expiry = dates.FromYMD(2016, 1, 1)
	addr   = netip.MustParseAddr("192.0.2.1")
)

func verisign() *Repository { return NewRepository("Verisign", "com", "net", "edu", "gov") }

// setupFooBar builds the Figure 1 situation: registrar A's foo.com with
// subordinate hosts; registrar B's bar.com delegated to ns2.foo.com.
func setupFooBar(t *testing.T) *Repository {
	t.Helper()
	r := verisign()
	mustOK := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err := r.CreateDomain("A", "foo.com", day0, expiry)
	mustOK(err)
	_, err = r.CreateHost("A", "ns1.foo.com", day0, addr)
	mustOK(err)
	_, err = r.CreateHost("A", "ns2.foo.com", day0, addr)
	mustOK(err)
	mustOK(r.SetDomainNS("A", "foo.com", "ns1.foo.com", "ns2.foo.com"))
	_, err = r.CreateDomain("B", "bar.com", day0, expiry)
	mustOK(err)
	mustOK(r.SetDomainNS("B", "bar.com", "ns2.foo.com"))
	return r
}

func wantCode(t *testing.T, err error, code ResultCode) {
	t.Helper()
	if CodeOf(err) != code {
		t.Fatalf("error = %v, want EPP code %d", err, code)
	}
}

func TestCreateDomainValidation(t *testing.T) {
	r := verisign()
	if _, err := r.CreateDomain("A", "foo.org", day0, expiry); CodeOf(err) != CodeParameterPolicy {
		t.Errorf("foreign TLD: %v", err)
	}
	if _, err := r.CreateDomain("A", "sub.foo.com", day0, expiry); CodeOf(err) != CodeParameterPolicy {
		t.Errorf("non-registrable name: %v", err)
	}
	if _, err := r.CreateDomain("A", "foo.com", day0, expiry); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := r.CreateDomain("B", "foo.com", day0, expiry); CodeOf(err) != CodeObjectExists {
		t.Errorf("duplicate: %v", err)
	}
}

func TestDomainDeleteBlockedBySubordinateHosts(t *testing.T) {
	r := setupFooBar(t)
	wantCode(t, r.DeleteDomain("A", "foo.com"), CodeAssociationProhibits)
}

func TestHostDeleteBlockedByLinks(t *testing.T) {
	r := setupFooBar(t)
	wantCode(t, r.DeleteHost("A", "ns2.foo.com"), CodeAssociationProhibits)
}

func TestSponsorshipIsolation(t *testing.T) {
	r := setupFooBar(t)
	wantCode(t, r.SetDomainNS("A", "bar.com", "ns1.foo.com"), CodeAuthorizationError)
	wantCode(t, r.DeleteDomain("B", "foo.com"), CodeAuthorizationError)
	wantCode(t, r.RenameHost("B", "ns2.foo.com", "x.y.biz"), CodeAuthorizationError)
	wantCode(t, r.DeleteHost("B", "ns1.foo.com"), CodeAuthorizationError)
	wantCode(t, r.RenewDomain("B", "foo.com", expiry.AddYears(1)), CodeAuthorizationError)
}

func TestRenameToExternalNamespaceLoophole(t *testing.T) {
	r := setupFooBar(t)
	// No biz domain object exists anywhere, yet the rename succeeds:
	// .biz is external to this repository.
	if err := r.RenameHost("A", "ns2.foo.com", "ns2.fooxxxx.biz"); err != nil {
		t.Fatalf("external rename: %v", err)
	}
	h, err := r.HostInfo("ns2.fooxxxx.biz")
	if err != nil {
		t.Fatal(err)
	}
	if !h.External() {
		t.Error("renamed host should be external")
	}
	if len(h.Addrs) != 0 {
		t.Error("external host must lose glue addresses")
	}
	// bar.com's delegation silently follows the host object.
	d, _ := r.DomainInfo("bar.com")
	ns := r.NSNames(d)
	if len(ns) != 1 || ns[0] != "ns2.fooxxxx.biz" {
		t.Fatalf("bar.com NS = %v", ns)
	}
	// And the old name is gone.
	if r.HostExists("ns2.foo.com") {
		t.Error("old host name still present")
	}
}

func TestRenameToInternalRequiresSuperordinate(t *testing.T) {
	r := setupFooBar(t)
	wantCode(t, r.RenameHost("A", "ns2.foo.com", "ns2.nonexistent.net"), CodeParameterPolicy)
	// With the superordinate present and same-sponsored, it works.
	if _, err := r.CreateDomain("A", "sink.com", day0, expiry); err != nil {
		t.Fatal(err)
	}
	if err := r.RenameHost("A", "ns2.foo.com", "x1.sink.com"); err != nil {
		t.Fatalf("internal rename: %v", err)
	}
	h, _ := r.HostInfo("x1.sink.com")
	if h.External() {
		t.Error("sink-renamed host should be internal")
	}
	// Internal rename under ANOTHER registrar's domain is refused.
	if _, err := r.CreateDomain("B", "bsink.com", day0, expiry); err != nil {
		t.Fatal(err)
	}
	wantCode(t, r.RenameHost("A", "ns1.foo.com", "x2.bsink.com"), CodeAuthorizationError)
}

func TestExternalHostsAreImmutable(t *testing.T) {
	r := setupFooBar(t)
	if err := r.RenameHost("A", "ns2.foo.com", "ns2.fooxxxx.biz"); err != nil {
		t.Fatal(err)
	}
	wantCode(t, r.RenameHost("A", "ns2.fooxxxx.biz", "ns2.back.com"), CodeStatusProhibits)
}

func TestFullFigure1Sequence(t *testing.T) {
	r := setupFooBar(t)
	// Clear foo.com's own delegation, rename the linked host, delete the
	// unlinked one, delete the domain.
	if err := r.SetDomainNS("A", "foo.com"); err != nil {
		t.Fatal(err)
	}
	if err := r.RenameHost("A", "ns2.foo.com", "ns2.fooxxxx.biz"); err != nil {
		t.Fatal(err)
	}
	if err := r.DeleteHost("A", "ns1.foo.com"); err != nil {
		t.Fatal(err)
	}
	if err := r.DeleteDomain("A", "foo.com"); err != nil {
		t.Fatal(err)
	}
	if r.DomainExists("foo.com") {
		t.Error("foo.com should be gone")
	}
	// bar.com still delegates to the sacrificial name.
	got := r.LinkedDomains("ns2.fooxxxx.biz")
	if len(got) != 1 || got[0] != "bar.com" {
		t.Fatalf("LinkedDomains = %v", got)
	}
}

func TestRenameCollision(t *testing.T) {
	r := setupFooBar(t)
	if _, err := r.CreateHost("A", "taken.external.biz", day0); err != nil {
		t.Fatal(err)
	}
	wantCode(t, r.RenameHost("A", "ns2.foo.com", "taken.external.biz"), CodeObjectExists)
}

func TestCreateHostRules(t *testing.T) {
	r := verisign()
	// Internal host without superordinate domain.
	if _, err := r.CreateHost("A", "ns1.ghost.com", day0, addr); CodeOf(err) != CodeParameterPolicy {
		t.Errorf("missing superordinate: %v", err)
	}
	// External host with addresses.
	if _, err := r.CreateHost("A", "ns1.x.biz", day0, addr); CodeOf(err) != CodeParameterPolicy {
		t.Errorf("external host with glue: %v", err)
	}
	// External host without addresses is fine.
	if _, err := r.CreateHost("A", "ns1.x.biz", day0); err != nil {
		t.Errorf("external host: %v", err)
	}
	// Internal host under another sponsor's domain is refused.
	if _, err := r.CreateDomain("B", "bee.com", day0, expiry); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateHost("A", "ns1.bee.com", day0, addr); CodeOf(err) != CodeAuthorizationError {
		t.Errorf("cross-sponsor internal host: %v", err)
	}
}

func TestSetNSRequiresHostObjects(t *testing.T) {
	r := verisign()
	if _, err := r.CreateDomain("A", "a.com", day0, expiry); err != nil {
		t.Fatal(err)
	}
	wantCode(t, r.SetDomainNS("A", "a.com", "ns1.nowhere.biz"), CodeAssociationProhibits)
}

func TestDeleteDomainUnlinksOutboundDelegations(t *testing.T) {
	r := setupFooBar(t)
	// Delete bar.com: ns2.foo.com loses the bar.com link.
	if err := r.DeleteDomain("B", "bar.com"); err != nil {
		t.Fatal(err)
	}
	linked := r.LinkedDomains("ns2.foo.com")
	if len(linked) != 1 || linked[0] != "foo.com" {
		t.Fatalf("LinkedDomains after delete = %v", linked)
	}
}

func TestRenewAndTransfer(t *testing.T) {
	r := verisign()
	if _, err := r.CreateDomain("A", "a.com", day0, expiry); err != nil {
		t.Fatal(err)
	}
	wantCode(t, r.RenewDomain("A", "a.com", expiry), CodeParameterPolicy)
	if err := r.RenewDomain("A", "a.com", expiry.AddYears(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.TransferDomain("a.com", "B"); err != nil {
		t.Fatal(err)
	}
	d, _ := r.DomainInfo("a.com")
	if d.Sponsor != "B" {
		t.Error("transfer did not change sponsor")
	}
	wantCode(t, r.TransferDomain("ghost.com", "B"), CodeObjectDoesNotExist)
}

func TestRestrictedTLDsShareRepository(t *testing.T) {
	// The §2.4 scoping property: a .com rename rewrites .gov and .edu
	// delegations because Verisign's repository backs them all.
	r := verisign()
	for _, step := range []func() error{
		func() error { _, err := r.CreateDomain("gd", "provider.com", day0, expiry); return err },
		func() error { _, err := r.CreateHost("gd", "ns1.provider.com", day0, addr); return err },
		func() error { _, err := r.CreateDomain("educause", "college.edu", day0, expiry); return err },
		func() error { _, err := r.CreateDomain("cisa", "agency.gov", day0, expiry); return err },
		func() error { return r.SetDomainNS("educause", "college.edu", "ns1.provider.com") },
		func() error { return r.SetDomainNS("cisa", "agency.gov", "ns1.provider.com") },
		func() error { return r.RenameHost("gd", "ns1.provider.com", "dropthishost-42.biz") },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []dnsname.Name{"college.edu", "agency.gov"} {
		d, _ := r.DomainInfo(name)
		ns := r.NSNames(d)
		if len(ns) != 1 || ns[0] != "dropthishost-42.biz" {
			t.Fatalf("%s NS = %v", name, ns)
		}
	}
}

func TestSubordinateHostsListing(t *testing.T) {
	r := setupFooBar(t)
	subs := r.SubordinateHosts("foo.com")
	if len(subs) != 2 || subs[0].Name != "ns1.foo.com" || subs[1].Name != "ns2.foo.com" {
		t.Fatalf("SubordinateHosts = %v", subs)
	}
	if r.SubordinateHosts("bar.com") != nil {
		t.Error("bar.com should have no subordinate hosts")
	}
}

func TestErrorTypeAndCodeOf(t *testing.T) {
	var err error = &Error{Code: CodeObjectExists, Msg: "x"}
	if CodeOf(err) != CodeObjectExists {
		t.Error("CodeOf broken")
	}
	if CodeOf(errors.New("plain")) != 0 {
		t.Error("CodeOf should be 0 for foreign errors")
	}
	if err.Error() == "" {
		t.Error("Error() empty")
	}
}

// TestInvariantUnderRandomOps drives random operations and checks the
// repository's referential invariants throughout:
//
//   - every linked domain exists and its delegation contains the host;
//   - every internal host's superordinate domain exists;
//   - subordinate listings agree with host superordinate fields.
func TestInvariantUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	r := verisign()
	registrars := []RegistrarID{"A", "B", "C"}
	var domains []dnsname.Name
	var hosts []dnsname.Name
	pick := func(names []dnsname.Name) dnsname.Name {
		if len(names) == 0 {
			return "none.com"
		}
		return names[rng.Intn(len(names))]
	}
	for i := 0; i < 3000; i++ {
		rr := registrars[rng.Intn(len(registrars))]
		switch rng.Intn(7) {
		case 0:
			name := dnsname.Name(randWord(rng) + ".com")
			if _, err := r.CreateDomain(rr, name, day0, expiry); err == nil {
				domains = append(domains, name)
			}
		case 1:
			parent := pick(domains)
			h := dnsname.Join("ns"+randWord(rng), parent)
			if _, err := r.CreateHost(rr, h, day0, addr); err == nil {
				hosts = append(hosts, h)
			}
		case 2:
			_ = r.SetDomainNS(rr, pick(domains), pick(hosts))
		case 3:
			_ = r.DeleteDomain(rr, pick(domains))
		case 4:
			_ = r.DeleteHost(rr, pick(hosts))
		case 5:
			old := pick(hosts)
			newName := dnsname.Name(randWord(rng) + ".biz")
			if err := r.RenameHost(rr, old, newName); err == nil {
				hosts = append(hosts, newName)
			}
		case 6:
			_ = r.SetDomainNS(rr, pick(domains))
		}
	}
	// Invariant check.
	r.Hosts(func(h *Host) bool {
		for _, d := range r.LinkedDomains(h.Name) {
			dom, err := r.DomainInfo(d)
			if err != nil {
				t.Fatalf("linked domain %s of %s does not exist", d, h.Name)
			}
			found := false
			for _, ns := range r.NSNames(dom) {
				if ns == h.Name {
					found = true
				}
			}
			if !found {
				t.Fatalf("link set of %s contains %s but delegation does not", h.Name, d)
			}
		}
		if !h.External() {
			if _, ok := r.domainsByROID[h.Superordinate]; !ok {
				t.Fatalf("internal host %s has dangling superordinate", h.Name)
			}
		}
		return true
	})
	r.Domains(func(d *Domain) bool {
		for _, sub := range r.SubordinateHosts(d.Name) {
			if sub.Superordinate != d.ROID {
				t.Fatalf("subordinate listing inconsistent for %s", d.Name)
			}
		}
		return true
	})
}

func randWord(rng *rand.Rand) string {
	b := make([]byte, 4+rng.Intn(5))
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}
