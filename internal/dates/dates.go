// Package dates provides a compact civil-date representation used across
// the data plane.
//
// The measurement pipeline works with daily zone-file snapshots spanning
// almost a decade, so dates are stored as Day values: the number of days
// since an arbitrary epoch (2000-01-01). Day arithmetic is plain integer
// arithmetic, comparisons are cheap, and values pack tightly into indexes.
// time.Time is deliberately avoided in the data plane: it is 24 bytes, has
// wall-clock and timezone semantics the pipeline never needs, and makes
// deterministic simulation harder to audit.
package dates

import (
	"errors"
	"fmt"
)

// Day is a civil date encoded as days since 2000-01-01 (Day 0).
// Negative values are valid and refer to dates before the epoch.
type Day int32

// None is a sentinel for "no date". It is far outside any simulated range.
const None Day = -1 << 30

// Epoch components of Day 0.
const (
	epochYear  = 2000
	epochMonth = 1
	epochDay   = 1
)

var daysBefore = [13]int32{0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334, 365}

// IsLeap reports whether year is a leap year in the proleptic Gregorian
// calendar.
func IsLeap(year int) bool {
	return year%4 == 0 && (year%100 != 0 || year%400 == 0)
}

// daysInMonth returns the number of days in the given month of the given
// year. month is 1-based.
func daysInMonth(year, month int) int {
	if month == 2 && IsLeap(year) {
		return 29
	}
	return int(daysBefore[month] - daysBefore[month-1])
}

// daysFromCivil converts a civil date to days since 1970-01-01 using
// Howard Hinnant's algorithm, then the caller rebases to the 2000 epoch.
func daysFromCivil(y, m, d int) int64 {
	if m <= 2 {
		y--
	}
	var era int64
	if y >= 0 {
		era = int64(y) / 400
	} else {
		era = (int64(y) - 399) / 400
	}
	yoe := int64(y) - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468       // days since 1970-01-01
}

// civilFromDays is the inverse of daysFromCivil.
func civilFromDays(z int64) (y, m, d int) {
	z += 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		yy++
	}
	return int(yy), m, d
}

var epochOffset = daysFromCivil(epochYear, epochMonth, epochDay)

// FromYMD returns the Day for the given civil date. It panics if the date
// is not a valid calendar date; use Parse for untrusted input.
func FromYMD(year, month, day int) Day {
	if month < 1 || month > 12 || day < 1 || day > daysInMonth(year, month) {
		panic(fmt.Sprintf("dates: invalid date %04d-%02d-%02d", year, month, day))
	}
	return Day(daysFromCivil(year, month, day) - epochOffset)
}

// YMD returns the civil date components of d.
func (d Day) YMD() (year, month, day int) {
	return civilFromDays(int64(d) + epochOffset)
}

// Year returns the calendar year containing d.
func (d Day) Year() int {
	y, _, _ := d.YMD()
	return y
}

// Month returns the Month containing d.
func (d Day) Month() Month {
	y, m, _ := d.YMD()
	return MonthOf(y, m)
}

// String formats d as YYYY-MM-DD. The None sentinel formats as "none".
func (d Day) String() string {
	if d == None {
		return "none"
	}
	y, m, dd := d.YMD()
	return fmt.Sprintf("%04d-%02d-%02d", y, m, dd)
}

// Valid reports whether d is a real date (not the None sentinel).
func (d Day) Valid() bool { return d != None }

// Add returns d shifted by n days.
func (d Day) Add(n int) Day { return d + Day(n) }

// AddYears returns the date one or more calendar years after d, clamping
// Feb 29 to Feb 28 in non-leap years. This mirrors domain registration
// terms, which are calendar years.
func (d Day) AddYears(n int) Day {
	y, m, dd := d.YMD()
	y += n
	if dim := daysInMonth(y, m); dd > dim {
		dd = dim
	}
	return FromYMD(y, m, dd)
}

// Sub returns the number of days from other to d (d - other).
func (d Day) Sub(other Day) int { return int(d - other) }

// Parse parses a YYYY-MM-DD string.
func Parse(s string) (Day, error) {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return None, fmt.Errorf("dates: malformed date %q", s)
	}
	num := func(part string) (int, error) {
		n := 0
		for _, c := range part {
			if c < '0' || c > '9' {
				return 0, errors.New("dates: non-digit in date")
			}
			n = n*10 + int(c-'0')
		}
		return n, nil
	}
	y, err := num(s[0:4])
	if err != nil {
		return None, err
	}
	m, err := num(s[5:7])
	if err != nil {
		return None, err
	}
	dd, err := num(s[8:10])
	if err != nil {
		return None, err
	}
	if m < 1 || m > 12 || dd < 1 || dd > daysInMonth(y, m) {
		return None, fmt.Errorf("dates: invalid date %q", s)
	}
	return FromYMD(y, m, dd), nil
}

// Min returns the earlier of a and b.
func Min(a, b Day) Day {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of a and b.
func Max(a, b Day) Day {
	if a > b {
		return a
	}
	return b
}

// Month identifies a calendar month as year*12 + (month-1), supporting
// cheap monthly bucketing for the longitudinal figures.
type Month int32

// MonthOf returns the Month for the given year and 1-based month number.
func MonthOf(year, month int) Month {
	if month < 1 || month > 12 {
		panic(fmt.Sprintf("dates: invalid month %d", month))
	}
	return Month(year*12 + month - 1)
}

// Year returns the calendar year of m.
func (m Month) Year() int { return int(m) / 12 }

// MonthNumber returns the 1-based month-of-year of m.
func (m Month) MonthNumber() int { return int(m)%12 + 1 }

// Next returns the following month.
func (m Month) Next() Month { return m + 1 }

// First returns the first day of m.
func (m Month) First() Day { return FromYMD(m.Year(), m.MonthNumber(), 1) }

// Last returns the last day of m.
func (m Month) Last() Day {
	return FromYMD(m.Year(), m.MonthNumber(), daysInMonth(m.Year(), m.MonthNumber()))
}

// String formats m as YYYY-MM.
func (m Month) String() string {
	return fmt.Sprintf("%04d-%02d", m.Year(), m.MonthNumber())
}

// MonthsBetween returns every month from first to last inclusive.
func MonthsBetween(first, last Month) []Month {
	if last < first {
		return nil
	}
	out := make([]Month, 0, int(last-first)+1)
	for m := first; m <= last; m++ {
		out = append(out, m)
	}
	return out
}

// Range is an inclusive span of days. A Range with Last < First is empty.
type Range struct {
	First Day
	Last  Day
}

// NewRange returns the inclusive range [first, last].
func NewRange(first, last Day) Range { return Range{First: first, Last: last} }

// Empty reports whether r contains no days.
func (r Range) Empty() bool { return r.Last < r.First }

// Days returns the number of days in r.
func (r Range) Days() int {
	if r.Empty() {
		return 0
	}
	return int(r.Last-r.First) + 1
}

// Contains reports whether d falls within r.
func (r Range) Contains(d Day) bool { return d >= r.First && d <= r.Last }

// Intersect returns the overlap of r and other (possibly empty).
func (r Range) Intersect(other Range) Range {
	return Range{First: Max(r.First, other.First), Last: Min(r.Last, other.Last)}
}

// String formats r as "[YYYY-MM-DD, YYYY-MM-DD]".
func (r Range) String() string {
	return fmt.Sprintf("[%s, %s]", r.First, r.Last)
}

// Each calls fn for every day in r, in order.
func (r Range) Each(fn func(Day)) {
	for d := r.First; d <= r.Last; d++ {
		fn(d)
	}
}

// MarshalJSON encodes d as "YYYY-MM-DD" (the None sentinel as "none").
func (d Day) MarshalJSON() ([]byte, error) {
	return []byte(`"` + d.String() + `"`), nil
}

// UnmarshalJSON decodes "YYYY-MM-DD" or "none".
func (d *Day) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return fmt.Errorf("dates: malformed JSON day %s", s)
	}
	s = s[1 : len(s)-1]
	if s == "none" {
		*d = None
		return nil
	}
	parsed, err := Parse(s)
	if err != nil {
		return err
	}
	*d = parsed
	return nil
}

// MarshalJSON encodes m as "YYYY-MM".
func (m Month) MarshalJSON() ([]byte, error) {
	return []byte(`"` + m.String() + `"`), nil
}

// UnmarshalJSON decodes "YYYY-MM".
func (m *Month) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) != 9 || s[0] != '"' || s[8] != '"' || s[5] != '-' {
		return fmt.Errorf("dates: malformed JSON month %s", s)
	}
	var year, month int
	if _, err := fmt.Sscanf(s[1:8], "%04d-%02d", &year, &month); err != nil {
		return err
	}
	if month < 1 || month > 12 {
		return fmt.Errorf("dates: invalid month %s", s)
	}
	*m = MonthOf(year, month)
	return nil
}
