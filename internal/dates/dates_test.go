package dates

import (
	"testing"
	"testing/quick"
)

func TestFromYMDKnownDates(t *testing.T) {
	cases := []struct {
		y, m, d int
		want    Day
	}{
		{2000, 1, 1, 0},
		{2000, 1, 2, 1},
		{2000, 2, 29, 59}, // 2000 is a leap year
		{2000, 12, 31, 365},
		{2001, 1, 1, 366},
		{1999, 12, 31, -1},
	}
	for _, c := range cases {
		if got := FromYMD(c.y, c.m, c.d); got != c.want {
			t.Errorf("FromYMD(%d,%d,%d) = %d, want %d", c.y, c.m, c.d, got, c.want)
		}
	}
}

func TestYMDRoundTrip(t *testing.T) {
	f := func(n int32) bool {
		d := Day(n % 200000) // ~±547 years around 2000
		y, m, dd := d.YMD()
		return FromYMD(y, m, dd) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDayOrderingMatchesCalendar(t *testing.T) {
	if FromYMD(2011, 4, 1) >= FromYMD(2020, 9, 30) {
		t.Fatal("calendar order broken")
	}
	if FromYMD(2016, 2, 29).Add(1) != FromYMD(2016, 3, 1) {
		t.Fatal("leap-day arithmetic broken")
	}
}

func TestIsLeap(t *testing.T) {
	for year, want := range map[int]bool{2000: true, 1900: false, 2012: true, 2011: false, 2400: true} {
		if IsLeap(year) != want {
			t.Errorf("IsLeap(%d) = %v, want %v", year, IsLeap(year), want)
		}
	}
}

func TestAddYearsClampsLeapDay(t *testing.T) {
	d := FromYMD(2016, 2, 29)
	got := d.AddYears(1)
	if want := FromYMD(2017, 2, 28); got != want {
		t.Errorf("AddYears(1) from Feb 29 = %s, want %s", got, want)
	}
	if d.AddYears(4) != FromYMD(2020, 2, 29) {
		t.Errorf("AddYears(4) from Feb 29 should land on Feb 29 again")
	}
}

func TestParse(t *testing.T) {
	good := map[string]Day{
		"2000-01-01": 0,
		"2016-07-14": FromYMD(2016, 7, 14),
	}
	for s, want := range good {
		got, err := Parse(s)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	bad := []string{"", "2000-1-1", "2000/01/01", "2000-13-01", "2001-02-29", "20000101", "abcd-ef-gh"}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(n int32) bool {
		d := Day(n % 100000)
		back, err := Parse(d.String())
		return err == nil && back == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	if None.String() != "none" {
		t.Errorf("None.String() = %q", None.String())
	}
}

func TestMonth(t *testing.T) {
	m := FromYMD(2016, 7, 14).Month()
	if m.Year() != 2016 || m.MonthNumber() != 7 {
		t.Fatalf("Month() = %v", m)
	}
	if m.First() != FromYMD(2016, 7, 1) || m.Last() != FromYMD(2016, 7, 31) {
		t.Errorf("month bounds wrong: %s..%s", m.First(), m.Last())
	}
	if m.Next().MonthNumber() != 8 {
		t.Errorf("Next() = %v", m.Next())
	}
	if MonthOf(2016, 12).Next() != MonthOf(2017, 1) {
		t.Errorf("year rollover broken")
	}
	if m.String() != "2016-07" {
		t.Errorf("Month.String() = %q", m.String())
	}
}

func TestMonthsBetween(t *testing.T) {
	ms := MonthsBetween(MonthOf(2011, 4), MonthOf(2011, 7))
	if len(ms) != 4 || ms[0] != MonthOf(2011, 4) || ms[3] != MonthOf(2011, 7) {
		t.Fatalf("MonthsBetween = %v", ms)
	}
	if MonthsBetween(MonthOf(2011, 7), MonthOf(2011, 4)) != nil {
		t.Error("reversed MonthsBetween should be nil")
	}
}

func TestRange(t *testing.T) {
	r := NewRange(FromYMD(2011, 4, 1), FromYMD(2011, 4, 10))
	if r.Days() != 10 {
		t.Errorf("Days() = %d", r.Days())
	}
	if !r.Contains(FromYMD(2011, 4, 10)) || r.Contains(FromYMD(2011, 4, 11)) {
		t.Error("Contains wrong at boundary")
	}
	empty := NewRange(5, 4)
	if !empty.Empty() || empty.Days() != 0 {
		t.Error("empty range misbehaves")
	}
	inter := r.Intersect(NewRange(FromYMD(2011, 4, 8), FromYMD(2011, 4, 20)))
	if inter.Days() != 3 {
		t.Errorf("Intersect days = %d, want 3", inter.Days())
	}
	count := 0
	r.Each(func(Day) { count++ })
	if count != 10 {
		t.Errorf("Each visited %d days", count)
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Max(3, 5) != 5 || Min(5, 3) != 3 || Max(5, 3) != 5 {
		t.Error("Min/Max broken")
	}
}

func TestSub(t *testing.T) {
	a, b := FromYMD(2020, 9, 15), FromYMD(2020, 9, 10)
	if a.Sub(b) != 5 || b.Sub(a) != -5 {
		t.Error("Sub broken")
	}
}
