package riskybiz

import (
	"context"

	"repro/internal/detect"
	"repro/internal/obs"
)

// Option tweaks a study built by RunStudy. Options are applied in order
// over a zero Options value, so later options win.
type Option func(*Options)

// WithSeed selects the deterministic random stream.
func WithSeed(seed int64) Option {
	return func(o *Options) { o.Seed = seed }
}

// WithScale sets the simulated ecosystem's domains-per-day scale.
func WithScale(domainsPerDay float64) Option {
	return func(o *Options) { o.DomainsPerDay = domainsPerDay }
}

// WithDetector tunes the detection stage.
func WithDetector(cfg detect.Config) Option {
	return func(o *Options) { o.Detector = cfg }
}

// WithWorkers parallelizes the detector's classify stage across n
// workers. The emitted Result is identical to a serial run.
func WithWorkers(n int) Option {
	return func(o *Options) { o.Detector.Workers = n }
}

// WithSnapshots rebuilds the zone database through the snapshot differ
// before detection (Options.Reingest) — the exact pipeline a
// zone-file-based deployment runs. ingestWorkers > 1 shards the
// re-ingest across zone-affine workers.
func WithSnapshots(ingestWorkers int) Option {
	return func(o *Options) {
		o.Reingest = true
		o.IngestWorkers = ingestWorkers
	}
}

// WithStrictIngest aborts a re-ingest on the first invalid snapshot
// instead of quarantining it.
func WithStrictIngest() Option {
	return func(o *Options) { o.StrictIngest = true }
}

// WithObs routes pipeline metrics to reg.
func WithObs(reg *obs.Registry) Option {
	return func(o *Options) { o.Obs = reg }
}

// RunStudy is the functional-options face of RunContext:
//
//	study, err := riskybiz.RunStudy(ctx,
//		riskybiz.WithScale(25),
//		riskybiz.WithSnapshots(8),
//		riskybiz.WithWorkers(8))
func RunStudy(ctx context.Context, opts ...Option) (*Study, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return RunContext(ctx, o)
}
