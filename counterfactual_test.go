package riskybiz

import (
	"testing"

	"repro/internal/idioms"
	"repro/internal/sim"
)

// TestCascadeFixStopsNewExposure verifies the §7.3 EPP protocol change:
// once domain deletion cascades to subordinate host references, no
// sacrificial nameservers are created.
func TestCascadeFixStopsNewExposure(t *testing.T) {
	st, err := Run(Options{Seed: 2, DomainsPerDay: 4, EPPCascadeFix: true})
	if err != nil {
		t.Fatal(err)
	}
	after := 0
	for _, rn := range st.World.Truth().Renames {
		if rn.Day >= sim.NotificationDay {
			after++
		}
	}
	if after != 0 {
		t.Errorf("%d sacrificial renames after the cascade fix", after)
	}
	// Exposure before the fix is untouched.
	before := 0
	for _, rn := range st.World.Truth().Renames {
		if rn.Day < sim.NotificationDay {
			before++
		}
	}
	if before == 0 {
		t.Error("cascade fix erased pre-fix history")
	}
	// The world stays consistent: deletions still complete (no parked
	// domains piling up as undeletable).
	baseline, err := Run(Options{Seed: 2, DomainsPerDay: 4})
	if err != nil {
		t.Fatal(err)
	}
	baseAfter := 0
	for _, rn := range baseline.World.Truth().Renames {
		if rn.Day >= sim.NotificationDay {
			baseAfter++
		}
	}
	if baseAfter == 0 {
		t.Skip("baseline produced no post-notification renames; nothing to compare")
	}
}

// TestInvalidTLDRemediation verifies the reserved-TLD counterfactual:
// every post-switch rename by a notified registrar lands under .invalid,
// and the resulting names can never be hijacked (no registry operates
// .invalid, so the detector reports them as protected).
func TestInvalidTLDRemediation(t *testing.T) {
	st, err := Run(Options{Seed: 2, DomainsPerDay: 4, InvalidTLDRemediation: true})
	if err != nil {
		t.Fatal(err)
	}
	sawInvalid := false
	for _, rn := range st.World.Truth().Renames {
		if rn.Idiom != idioms.InvalidTLD {
			continue
		}
		sawInvalid = true
		if rn.New.TLD() != "invalid" {
			t.Errorf("invalid-TLD rename produced %s", rn.New)
		}
	}
	if !sawInvalid {
		t.Fatal("no .invalid renames; counterfactual did not engage")
	}
	t6 := st.Analysis.Table6()
	foundRow := false
	for _, r := range t6.Rows {
		if r.Idiom == idioms.InvalidTLD {
			foundRow = true
			if r.Nameservers == 0 {
				t.Error("empty .invalid row in Table 6")
			}
		}
	}
	if !foundRow {
		t.Errorf("Table 6 missing the .invalid idiom: %+v", t6.Rows)
	}
	// None of the .invalid names can ever be hijacked.
	for i := range st.Result.Sacrificial {
		s := &st.Result.Sacrificial[i]
		if s.NS.TLD() == "invalid" && (s.Hijackable() || s.Hijacked()) {
			t.Errorf("%s under .invalid reported hijackable", s.NS)
		}
	}
}
