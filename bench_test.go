// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (each regenerates the artifact from a cached study), the
// detection-funnel benchmark, ablation benchmarks for the design choices
// called out in DESIGN.md, and end-to-end pipeline benchmarks.
//
// Run with:
//
//	go test -bench=. -benchmem
package riskybiz

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/dates"
	"repro/internal/detect"
	"repro/internal/dnsname"
	"repro/internal/interval"
	"repro/internal/obs"
	"repro/internal/sim"
)

var (
	benchOnce sync.Once
	benchSt   *Study
	benchErr  error
)

// benchStudy caches one moderate study for all table/figure benchmarks.
func benchStudy(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() {
		benchSt, benchErr = Run(Options{Seed: 1, DomainsPerDay: 8})
	})
	if benchErr != nil {
		b.Fatalf("study: %v", benchErr)
	}
	return benchSt
}

// ---- Tables ----

func BenchmarkTable1(b *testing.B) {
	a := benchStudy(b).Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := a.Table1()
		if t.TotalNameservers == 0 {
			b.Fatal("empty Table 1")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	a := benchStudy(b).Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := a.Table2()
		if t.TotalNameservers == 0 {
			b.Fatal("empty Table 2")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	a := benchStudy(b).Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := a.Table3()
		if t.HijackableNS == 0 {
			b.Fatal("empty Table 3")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	a := benchStudy(b).Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := a.Table4(5)
		if len(rows) == 0 {
			b.Fatal("empty Table 4")
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	a := benchStudy(b).Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := a.Table5(sim.NotificationDay, sim.FollowupDay)
		if t.Before.VulnerableNS == 0 {
			b.Fatal("empty Table 5")
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	a := benchStudy(b).Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := a.Table6()
		if t.TotalNameservers == 0 {
			b.Fatal("empty Table 6")
		}
	}
}

// ---- Figures ----

func BenchmarkFigure3(b *testing.B) {
	a := benchStudy(b).Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := a.Figure3()
		if s.Total() == 0 {
			b.Fatal("empty Figure 3")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	a := benchStudy(b).Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := a.Figure4()
		if s.Total() == 0 {
			b.Fatal("empty Figure 4")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	a := benchStudy(b).Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := a.Figure5()
		if len(pts) == 0 {
			b.Fatal("empty Figure 5")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	a := benchStudy(b).Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nsCDF, domCDF := a.Figure6()
		if nsCDF.N() == 0 || domCDF.N() == 0 {
			b.Fatal("empty Figure 6")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	a := benchStudy(b).Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		never, exp, hij := a.Figure7()
		if never.N() == 0 || exp.N() == 0 || hij.N() == 0 {
			b.Fatal("empty Figure 7")
		}
	}
}

// ---- §3.2 funnel and §4 accident ----

func BenchmarkFunnel(b *testing.B) {
	st := benchStudy(b)
	det := &detect.Detector{
		DB:    st.World.ZoneDB(),
		WHOIS: st.World.WHOIS(),
		Dir:   st.World.Directory(),
		Cfg:   detect.Config{SkipMining: true},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := det.Run()
		if res.Funnel.Sacrificial == 0 {
			b.Fatal("empty funnel")
		}
	}
}

func BenchmarkAccident(b *testing.B) {
	st := benchStudy(b)
	a := st.Analysis
	ns := st.World.Truth().AccidentNS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := a.Accident(ns, st.World.Config().End)
		if rep.PeakDomains == 0 {
			b.Fatal("empty accident report")
		}
	}
}

// ---- End-to-end pipeline ----

func BenchmarkSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(3)
		cfg.Seed = int64(i + 1)
		w, err := sim.NewWorld(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := Run(Options{Seed: int64(i + 1), DomainsPerDay: 3})
		if err != nil {
			b.Fatal(err)
		}
		if st.Analysis.Table3().HijackableNS == 0 {
			b.Fatal("empty pipeline result")
		}
	}
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationSelectivity compares degree-selective hijackers with
// the uniform ablation; the reported metric is the per-op cost, and the
// Figure 5 gradient is printed once.
func BenchmarkAblationSelectivity(b *testing.B) {
	for _, mode := range []struct {
		name    string
		uniform bool
	}{{"selective", false}, {"uniform", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := Run(Options{Seed: 1, DomainsPerDay: 3, UniformHijackers: mode.uniform})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					t3 := st.Analysis.Table3()
					b.Logf("%s: %.1f%% NS, %.1f%% domains hijacked",
						mode.name, 100*t3.NSFraction(), 100*t3.DomainFraction())
				}
			}
		})
	}
}

// BenchmarkAblationEPPFix compares the historical world with the §7.3
// cascade-delete counterfactual: the interesting output is the number of
// hijackable renames after the notification date (zero under the fix).
func BenchmarkAblationEPPFix(b *testing.B) {
	for _, mode := range []struct {
		name string
		fix  bool
	}{{"historical", false}, {"cascade-fix", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := Run(Options{Seed: 1, DomainsPerDay: 3, EPPCascadeFix: mode.fix})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					after := 0
					for _, rn := range st.World.Truth().Renames {
						if rn.Day >= sim.NotificationDay {
							after++
						}
					}
					b.Logf("%s: %d renames after notification day", mode.name, after)
				}
			}
		})
	}
}

// BenchmarkAblationSingleRepo measures the detector with and without the
// single-repository elimination.
func BenchmarkAblationSingleRepo(b *testing.B) {
	st := benchStudy(b)
	for _, mode := range []struct {
		name string
		skip bool
	}{{"with-check", false}, {"without-check", true}} {
		b.Run(mode.name, func(b *testing.B) {
			det := &detect.Detector{
				DB:    st.World.ZoneDB(),
				WHOIS: st.World.WHOIS(),
				Dir:   st.World.Directory(),
				Cfg:   detect.Config{SkipMining: true, SkipSingleRepoCheck: mode.skip},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := det.Run()
				if i == 0 {
					b.Logf("%s: %d violations, %d unclassified",
						mode.name, res.Funnel.SingleRepoViolations, res.Funnel.Unclassified)
				}
			}
		})
	}
}

// BenchmarkAblationMinSupport sweeps the pattern miner's minimum support.
func BenchmarkAblationMinSupport(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	names := make([]dnsname.Name, 0, 4000)
	for i := 0; i < 1500; i++ {
		names = append(names, dnsname.Name(fmt.Sprintf("dropthishost-%08x.biz", rng.Uint32())))
	}
	for i := 0; i < 1500; i++ {
		names = append(names, dnsname.Name(fmt.Sprintf("r%07x.lamedelegation.org", rng.Uint32())))
	}
	for i := 0; i < 1000; i++ {
		names = append(names, dnsname.Name(fmt.Sprintf("ns1.rnd%08x.com", rng.Uint32())))
	}
	for _, support := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("support-%d", support), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pats := detect.MineSubstrings(names, detect.MinerConfig{MinSupport: support})
				if len(pats) == 0 {
					b.Fatal("no patterns")
				}
			}
		})
	}
}

// BenchmarkAblationIntervalIndex compares interval-set containment
// queries against a naive per-day scan of raw events.
func BenchmarkAblationIntervalIndex(b *testing.B) {
	type event struct {
		day dates.Day
		on  bool
	}
	rng := rand.New(rand.NewSource(3))
	var set interval.Set
	var events []event
	day := dates.Day(0)
	for i := 0; i < 300; i++ {
		start := day + dates.Day(rng.Intn(20))
		end := start + dates.Day(rng.Intn(30))
		set.Add(dates.NewRange(start, end))
		events = append(events, event{start, true}, event{end + 1, false})
		day = end + 2
	}
	probe := make([]dates.Day, 1000)
	for i := range probe {
		probe[i] = dates.Day(rng.Intn(int(day)))
	}
	b.Run("interval-set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hits := 0
			for _, d := range probe {
				if set.Contains(d) {
					hits++
				}
			}
			if hits == 0 {
				b.Fatal("no hits")
			}
		}
	})
	b.Run("naive-event-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hits := 0
			for _, d := range probe {
				on := false
				for _, e := range events {
					if e.day > d {
						break
					}
					on = e.on
				}
				if on {
					hits++
				}
			}
			if hits == 0 {
				b.Fatal("no hits")
			}
		}
	})
}

// BenchmarkSnapshotReconstruction measures materializing one daily zone
// file from the longitudinal store.
func BenchmarkSnapshotReconstruction(b *testing.B) {
	st := benchStudy(b)
	db := st.World.ZoneDB()
	day := dates.FromYMD(2016, 7, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := db.SnapshotOn("com", day)
		if snap.NumDomains() == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkPartialAnalysis measures the §5.6 partially-exposed scan.
func BenchmarkPartialAnalysis(b *testing.B) {
	a := benchStudy(b).Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := a.Partial(sim.NotificationDay)
		if p.FullyExposed == 0 {
			b.Fatal("empty partial stats")
		}
	}
}

var _ = analysis.NewCDF // keep the analysis import for documentation links

// ---- Observability primitives ----

// BenchmarkObsCounter measures the per-event cost of a hot-path counter
// increment — the price every instrumented query/command/request pays.
func BenchmarkObsCounter(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_events_total", "benchmark counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != uint64(b.N) {
		b.Fatalf("counter = %d, want %d", c.Value(), b.N)
	}
}

// BenchmarkObsCounterVec measures the labeled variant, including the
// child lookup that the HTTP middleware and EPP server perform per event.
func BenchmarkObsCounterVec(b *testing.B) {
	reg := obs.NewRegistry()
	vec := reg.CounterVec("bench_labeled_total", "benchmark labeled counter", "route", "class")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.With("/domains/{name}", "2xx").Inc()
	}
}

// BenchmarkObsSpan measures a full start/end span cycle: two clock reads
// plus a histogram observation and two counter increments.
func BenchmarkObsSpan(b *testing.B) {
	reg := obs.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := reg.StartSpan("bench.stage")
		sp.AddItems(1)
		sp.End()
	}
}

// BenchmarkDetectionWorkers measures candidate extraction across worker
// counts (stage 1 dominates detection cost). Results are identical at
// every worker count (TestParallelWorkersIdentical); speedups require
// multiple CPUs — on a single-CPU machine this shows pure goroutine and
// memo-duplication overhead.
func BenchmarkDetectionWorkers(b *testing.B) {
	st := benchStudy(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			det := &detect.Detector{
				DB:    st.World.ZoneDB(),
				WHOIS: st.World.WHOIS(),
				Dir:   st.World.Directory(),
				Cfg:   detect.Config{SkipMining: true, Workers: workers},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := det.Run()
				if res.Funnel.Sacrificial == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}
