// Package riskybiz reproduces "Risky BIZness: Risks Derived from
// Registrar Name Management" (Akiwate, Savage, Voelker, Claffy; ACM IMC
// 2021): the discovery that registrars, to delete expired domains whose
// nameserver host objects are still referenced, rename those host objects
// to (usually unregistered) names in foreign TLDs — sacrificial
// nameservers — silently exposing every dependent domain to hijacking.
//
// The package is a facade over three layers:
//
//   - internal/sim: a deterministic ecosystem simulation (EPP
//     repositories per RFC 5730-5732, registries, registrars with the
//     documented renaming idioms, hijacker actors, the 2016 Namecheap
//     accident, and the 2020-21 remediation campaign) standing in for
//     the paper's nine years of CAIDA-DZDB zone files.
//   - internal/detect: the paper's detection methodology, run only on
//     zone-derivable data (candidate extraction, substring mining,
//     original-nameserver matching, single-repository check).
//   - internal/analysis: every table and figure of the evaluation.
//
// A minimal end-to-end run:
//
//	study, err := riskybiz.Run(riskybiz.Options{DomainsPerDay: 10})
//	if err != nil { ... }
//	t3 := study.Analysis.Table3()
//	fmt.Printf("%.1f%% of hijackable domains were hijacked\n",
//		100*t3.DomainFraction())
package riskybiz

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/dates"
	"repro/internal/detect"
	"repro/internal/sim"
)

// Options configures an end-to-end study.
type Options struct {
	// Seed selects the deterministic random stream (default 1).
	Seed int64
	// DomainsPerDay scales the simulated ecosystem (default 10).
	DomainsPerDay float64
	// DisableHijackers, DisableAccident, and DisableRemediation switch
	// off scenario components (ablations).
	DisableHijackers   bool
	DisableAccident    bool
	DisableRemediation bool
	// UniformHijackers replaces degree-selective hijacker behaviour with
	// a uniform coin flip (the Figure 5/6 ablation).
	UniformHijackers bool
	// InvalidTLDRemediation makes the notified registrars adopt the
	// §7.3 reserved-TLD idiom (.invalid) instead of their historical
	// sink choices.
	InvalidTLDRemediation bool
	// EPPCascadeFix enables the §7.3 EPP protocol change (cascade
	// delete) from the notification date onward: no sacrificial
	// nameserver can be created after it.
	EPPCascadeFix bool
	// Detector tunes the detection stage.
	Detector detect.Config
	// KeepAccidentNS includes the Namecheap-accident nameservers in the
	// analyses instead of excluding them as the paper does.
	KeepAccidentNS bool
}

// Study bundles the outcome of a full pipeline run.
type Study struct {
	World    *sim.World
	Result   *detect.Result
	Analysis *analysis.Analysis
	// Window is the paper's measurement window (Apr 2011 - Sep 2020).
	Window dates.Range
}

// Run simulates the ecosystem, runs detection, and prepares the analyses.
func Run(opts Options) (*Study, error) {
	if opts.DomainsPerDay <= 0 {
		opts.DomainsPerDay = 10
	}
	cfg := sim.DefaultConfig(opts.DomainsPerDay)
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	cfg.Hijackers = !opts.DisableHijackers
	cfg.Accident = !opts.DisableAccident
	cfg.Remediation = !opts.DisableRemediation
	cfg.UniformHijackers = opts.UniformHijackers
	cfg.UseInvalidTLD = opts.InvalidTLDRemediation
	if opts.EPPCascadeFix {
		cfg.CascadeFixFrom = sim.NotificationDay
	}

	world, err := sim.NewWorld(cfg)
	if err != nil {
		return nil, fmt.Errorf("riskybiz: building world: %w", err)
	}
	if err := world.Run(); err != nil {
		return nil, fmt.Errorf("riskybiz: simulating: %w", err)
	}
	det := &detect.Detector{
		DB:    world.ZoneDB(),
		WHOIS: world.WHOIS(),
		Dir:   world.Directory(),
		Cfg:   opts.Detector,
	}
	result := det.Run()

	window := dates.NewRange(sim.WindowStart, sim.WindowEnd)
	excludeNS := world.Truth().AccidentNS
	if opts.KeepAccidentNS {
		excludeNS = nil
	}
	an := analysis.New(result, world.ZoneDB(), window, excludeNS).WithWHOIS(world.WHOIS())
	return &Study{World: world, Result: result, Analysis: an, Window: window}, nil
}
