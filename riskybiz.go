// Package riskybiz reproduces "Risky BIZness: Risks Derived from
// Registrar Name Management" (Akiwate, Savage, Voelker, Claffy; ACM IMC
// 2021): the discovery that registrars, to delete expired domains whose
// nameserver host objects are still referenced, rename those host objects
// to (usually unregistered) names in foreign TLDs — sacrificial
// nameservers — silently exposing every dependent domain to hijacking.
//
// The package is a facade over three layers:
//
//   - internal/sim: a deterministic ecosystem simulation (EPP
//     repositories per RFC 5730-5732, registries, registrars with the
//     documented renaming idioms, hijacker actors, the 2016 Namecheap
//     accident, and the 2020-21 remediation campaign) standing in for
//     the paper's nine years of CAIDA-DZDB zone files.
//   - internal/detect: the paper's detection methodology, run only on
//     zone-derivable data (candidate extraction, substring mining,
//     original-nameserver matching, single-repository check).
//   - internal/analysis: every table and figure of the evaluation.
//
// A minimal end-to-end run:
//
//	study, err := riskybiz.Run(riskybiz.Options{DomainsPerDay: 10})
//	if err != nil { ... }
//	t3 := study.Analysis.Table3()
//	fmt.Printf("%.1f%% of hijackable domains were hijacked\n",
//		100*t3.DomainFraction())
package riskybiz

import (
	"context"
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/dates"
	"repro/internal/detect"
	"repro/internal/dnsname"
	"repro/internal/dnszone"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/sim"
	"repro/internal/zonedb"
)

// Options configures an end-to-end study.
type Options struct {
	// Seed selects the deterministic random stream (default 1).
	Seed int64
	// DomainsPerDay scales the simulated ecosystem (default 10).
	DomainsPerDay float64
	// DisableHijackers, DisableAccident, and DisableRemediation switch
	// off scenario components (ablations).
	DisableHijackers   bool
	DisableAccident    bool
	DisableRemediation bool
	// UniformHijackers replaces degree-selective hijacker behaviour with
	// a uniform coin flip (the Figure 5/6 ablation).
	UniformHijackers bool
	// InvalidTLDRemediation makes the notified registrars adopt the
	// §7.3 reserved-TLD idiom (.invalid) instead of their historical
	// sink choices.
	InvalidTLDRemediation bool
	// EPPCascadeFix enables the §7.3 EPP protocol change (cascade
	// delete) from the notification date onward: no sacrificial
	// nameserver can be created after it.
	EPPCascadeFix bool
	// Detector tunes the detection stage.
	Detector detect.Config
	// KeepAccidentNS includes the Namecheap-accident nameservers in the
	// analyses instead of excluding them as the paper does.
	KeepAccidentNS bool
	// Reingest rebuilds the zone database by exporting the simulated
	// world's daily snapshots and feeding them back through the
	// snapshot differ before detection — the exact pipeline a
	// zone-file-based deployment runs.
	Reingest bool
	// StrictIngest aborts the re-ingest on the first invalid snapshot;
	// by default invalid snapshots are quarantined (degraded mode) and
	// reported in Study.Quarantine.
	StrictIngest bool
	// MaxQuarantine bounds degraded-mode quarantining (0 = unlimited).
	MaxQuarantine int
	// IngestWorkers, when > 1, shards the re-ingest across that many
	// zone-affine workers (zonedb.Ingester.Workers). The resulting
	// database is identical to a serial re-ingest.
	IngestWorkers int
	// Obs, when set, receives ingest metrics from the re-ingest.
	Obs *obs.Registry
}

// Study bundles the outcome of a full pipeline run.
type Study struct {
	World    *sim.World
	Result   *detect.Result
	Analysis *analysis.Analysis
	// DB is the zone database detection ran over: the world's live DB,
	// or the re-ingested one when Options.Reingest was set.
	DB *zonedb.DB
	// Quarantine reports snapshots skipped by a degraded re-ingest.
	Quarantine zonedb.QuarantineReport
	// Window is the paper's measurement window (Apr 2011 - Sep 2020).
	Window dates.Range
}

// Run simulates the ecosystem, runs detection, and prepares the analyses.
//
// Deprecated: use RunContext (or the functional-options RunStudy), which
// carries cancellation and trace context through the pipeline phases.
// Run is equivalent to RunContext(context.Background(), opts).
func Run(opts Options) (*Study, error) {
	return RunContext(context.Background(), opts)
}

// RunContext is Run with the pipeline's phases (world build, simulate,
// re-ingest, detect, analysis) journaled as child spans of the trace
// carried by ctx; with no trace in ctx it behaves exactly like Run.
func RunContext(ctx context.Context, opts Options) (*Study, error) {
	if opts.DomainsPerDay <= 0 {
		opts.DomainsPerDay = 10
	}
	cfg := sim.DefaultConfig(opts.DomainsPerDay)
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	cfg.Hijackers = !opts.DisableHijackers
	cfg.Accident = !opts.DisableAccident
	cfg.Remediation = !opts.DisableRemediation
	cfg.UniformHijackers = opts.UniformHijackers
	cfg.UseInvalidTLD = opts.InvalidTLDRemediation
	if opts.EPPCascadeFix {
		cfg.CascadeFixFrom = sim.NotificationDay
	}

	_, wsp := trace.Start(ctx, "sim.world")
	world, err := sim.NewWorld(cfg)
	if err != nil {
		wsp.SetError(err)
		wsp.End()
		return nil, fmt.Errorf("riskybiz: building world: %w", err)
	}
	err = world.Run()
	wsp.SetError(err)
	wsp.End()
	if err != nil {
		return nil, fmt.Errorf("riskybiz: simulating: %w", err)
	}
	db := world.ZoneDB()
	var quarantine zonedb.QuarantineReport
	if opts.Reingest {
		rctx, rsp := trace.Start(ctx, "zonedb.reingest")
		reingested, report, err := reingest(rctx, world, opts)
		rsp.SetError(err)
		rsp.End()
		if err != nil {
			return nil, err
		}
		db, quarantine = reingested, report
	}
	det := &detect.Detector{
		DB:    db,
		WHOIS: world.WHOIS(),
		Dir:   world.Directory(),
		Cfg:   opts.Detector,
	}
	result := det.RunContext(ctx)

	window := dates.NewRange(sim.WindowStart, sim.WindowEnd)
	excludeNS := world.Truth().AccidentNS
	if opts.KeepAccidentNS {
		excludeNS = nil
	}
	_, asp := trace.Start(ctx, "analysis.build")
	an := analysis.New(result, db, window, excludeNS).WithWHOIS(world.WHOIS())
	asp.End()
	return &Study{World: world, Result: result, Analysis: an,
		DB: db, Quarantine: quarantine, Window: window}, nil
}

// reingest exports the world's daily zone snapshots and rebuilds the
// database through the snapshot differ, honouring the fault-tolerance
// options. Each zone's snapshot stream gets its own child span (the
// differ only requires per-zone chronology, so the zone-outer order is
// equivalent to the day-outer one).
func reingest(ctx context.Context, world *sim.World, opts Options) (*zonedb.DB, zonedb.QuarantineReport, error) {
	src := world.ZoneDB()
	ing := zonedb.NewIngester()
	ing.Degraded = !opts.StrictIngest
	ing.MaxQuarantine = opts.MaxQuarantine
	ing.Obs = opts.Obs
	cfg := world.Config()
	if opts.IngestWorkers > 1 {
		ing.Workers = opts.IngestWorkers
		_, psp := trace.Start(ctx, "zonedb.ingest.parallel")
		psp.SetAttrInt("workers", opts.IngestWorkers)
		err := ing.IngestAll(&snapshotWalker{
			db: src, zones: src.Zones(), start: cfg.Start, end: cfg.End,
		})
		psp.SetError(err)
		psp.End()
		if err != nil {
			return nil, zonedb.QuarantineReport{}, fmt.Errorf("riskybiz: reingest: %w", err)
		}
		return ing.Finish(), ing.Quarantine(), nil
	}
	for _, zone := range src.Zones() {
		_, zsp := trace.Start(ctx, "zonedb.ingest.zone")
		zsp.SetAttr("zone", string(zone))
		days := 0
		for day := cfg.Start; day <= cfg.End; day++ {
			if err := ing.AddSnapshot(src.SnapshotOn(zone, day)); err != nil {
				err = fmt.Errorf("riskybiz: reingest %s@%s: %w", zone, day, err)
				zsp.SetError(err)
				zsp.End()
				return nil, zonedb.QuarantineReport{}, err
			}
			days++
		}
		zsp.SetAttrInt("items", days)
		zsp.End()
	}
	return ing.Finish(), ing.Quarantine(), nil
}

// snapshotWalker streams a simulated world's daily snapshots zone-outer,
// day-inner (the differ only needs per-zone chronology) without
// materializing them all up front.
type snapshotWalker struct {
	db         *zonedb.DB
	zones      []dnsname.Name
	start, end dates.Day

	started bool
	zi      int
	day     dates.Day
}

// Next implements zonedb.SnapshotSource.
func (s *snapshotWalker) Next() (*dnszone.Snapshot, string, error) {
	if !s.started {
		s.started = true
		s.day = s.start
	}
	for {
		if s.zi >= len(s.zones) {
			return nil, "", io.EOF
		}
		if s.day > s.end {
			s.zi++
			s.day = s.start
			continue
		}
		zone, day := s.zones[s.zi], s.day
		s.day++
		return s.db.SnapshotOn(zone, day), fmt.Sprintf("%s@%s", zone, day), nil
	}
}
